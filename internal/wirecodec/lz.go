package wirecodec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
)

// The "lz" codec is a byte-oriented LZ77 format in the snappy/s2
// family, implemented here because the shuffle wants a codec that is
// several times cheaper than DEFLATE per byte: no Huffman pass, no bit
// packing — just a greedy hash-table match finder emitting literal runs
// and back-references. Ratio is worse than deflate; CPU is far lower,
// which is the right trade for intermediate data written once and read
// once on the same fleet.
//
// Stream format: a sequence of independent frames
//
//	uvarint rawLen | uvarint compLen | data
//
// where compLen == 0 means data is rawLen stored bytes (the
// incompressible fallback — a frame never expands by more than its
// header), otherwise data is compLen bytes of ops decoding to exactly
// rawLen bytes. Ops:
//
//	literal run:  uvarint (n<<1)|0, then n bytes
//	copy:         uvarint (n<<1)|1, then uvarint offset (1-based back
//	              reference within the frame; n >= 4)
//
// Frames are at most lzFrameRaw raw bytes, so matches need at most 16
// bits of offset and a torn stream wastes at most one frame of work.

// LZName is the wire name of the LZ codec.
const LZName = "lz"

// LZExt marks at-rest data compressed with the LZ codec.
const LZExt = ".lz"

const (
	// lzFrameRaw is the raw payload per frame.
	lzFrameRaw = 64 << 10
	// lzMaxFrameRaw bounds rawLen when decoding untrusted streams.
	lzMaxFrameRaw = 1 << 20
	// lzMinMatch is the shortest back-reference worth emitting: a copy
	// op costs >= 2 bytes plus the tag, so 4 is the break-even point.
	lzMinMatch = 4
	// lzTableBits sizes the match-finder hash table.
	lzTableBits = 14
)

// errLZCorrupt is returned for any malformed frame.
var errLZCorrupt = errors.New("wirecodec: corrupt lz data")

type lzCodec struct{}

func (lzCodec) Name() string { return LZName }
func (lzCodec) Ext() string  { return LZExt }

// ---------------------------------------------------------------------------
// Compression core

func lzHash(v uint32) uint32 { return (v * 0x1e35a7bd) >> (32 - lzTableBits) }

func lzLoad32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// lzCompressFrame appends the compressed ops for src (≤ lzFrameRaw
// bytes) to dst and returns it. table is the caller's hash table slab;
// entries store position+1, so the caller need only hand over a zeroed
// (or stale-safe, i.e. re-zeroed) table per frame.
func lzCompressFrame(dst, src []byte, table []uint32) []byte {
	clear(table)
	var (
		s       int // scan position
		lit     int // start of the pending literal run
		scratch [binary.MaxVarintLen64]byte
	)
	emitLiterals := func(end int) {
		if end == lit {
			return
		}
		n := binary.PutUvarint(scratch[:], uint64(end-lit)<<1)
		dst = append(dst, scratch[:n]...)
		dst = append(dst, src[lit:end]...)
	}
	for s+lzMinMatch <= len(src) {
		h := lzHash(lzLoad32(src, s))
		cand := int(table[h]) - 1
		table[h] = uint32(s + 1)
		if cand >= 0 && lzLoad32(src, cand) == lzLoad32(src, s) {
			// Extend the match as far as it goes, eight bytes at a time:
			// long matches (the whole point of the codec) must not pay a
			// bounds-checked compare per byte.
			mlen := lzMinMatch
			for s+mlen+8 <= len(src) {
				x := binary.LittleEndian.Uint64(src[cand+mlen:])
				y := binary.LittleEndian.Uint64(src[s+mlen:])
				if x != y {
					mlen += bits.TrailingZeros64(x^y) >> 3
					goto matched
				}
				mlen += 8
			}
			for s+mlen < len(src) && src[cand+mlen] == src[s+mlen] {
				mlen++
			}
		matched:
			emitLiterals(s)
			n := binary.PutUvarint(scratch[:], uint64(mlen)<<1|1)
			dst = append(dst, scratch[:n]...)
			n = binary.PutUvarint(scratch[:], uint64(s-cand))
			dst = append(dst, scratch[:n]...)
			// Seed the table at the match tail so back-to-back repeats
			// chain without hashing every interior position.
			if tail := s + mlen - lzMinMatch + 1; tail > s {
				if tail+lzMinMatch <= len(src) {
					table[lzHash(lzLoad32(src, tail))] = uint32(tail + 1)
				}
			}
			s += mlen
			lit = s
		} else {
			s++
		}
	}
	emitLiterals(len(src))
	return dst
}

// lzDecompressFrame decodes ops into dst (pre-sized to rawLen) and
// errors on any malformed input rather than panicking.
func lzDecompressFrame(dst, ops []byte) error {
	d := 0
	for len(ops) > 0 {
		tag, n := binary.Uvarint(ops)
		if n <= 0 {
			return errLZCorrupt
		}
		ops = ops[n:]
		length := int(tag >> 1)
		if length < 0 || length > len(dst)-d {
			return errLZCorrupt
		}
		if tag&1 == 0 {
			if length == 0 || length > len(ops) {
				return errLZCorrupt
			}
			copy(dst[d:], ops[:length])
			ops = ops[length:]
			d += length
			continue
		}
		off, n := binary.Uvarint(ops)
		if n <= 0 {
			return errLZCorrupt
		}
		ops = ops[n:]
		offset := int(off)
		if offset <= 0 || offset > d {
			return errLZCorrupt
		}
		// Chunked copy; an overlapping reference (offset < length, the
		// RLE case) replicates already-written output, and each pass
		// doubles the window it can copy from.
		src0 := d - offset
		for length > 0 {
			n := copy(dst[d:d+min(length, d-src0)], dst[src0:d])
			d += n
			length -= n
		}
	}
	if d != len(dst) {
		return errLZCorrupt
	}
	return nil
}

// ---------------------------------------------------------------------------
// Streaming writer

// lzState is the pooled per-writer working set: the raw input buffer,
// the compression scratch, and the match-finder table.
type lzState struct {
	raw   []byte
	comp  []byte
	table []uint32
}

var lzWriterPool = sync.Pool{New: func() any {
	return &lzState{
		raw:   make([]byte, 0, lzFrameRaw),
		table: make([]uint32, 1<<lzTableBits),
	}
}}

type lzWriter struct {
	dst io.Writer
	st  *lzState
	err error
}

func (lzCodec) NewWriter(dst io.Writer) io.WriteCloser {
	return &lzWriter{dst: dst, st: lzWriterPool.Get().(*lzState)}
}

func (w *lzWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	total := len(p)
	for len(p) > 0 {
		space := lzFrameRaw - len(w.st.raw)
		n := min(space, len(p))
		w.st.raw = append(w.st.raw, p[:n]...)
		p = p[n:]
		if len(w.st.raw) == lzFrameRaw {
			if w.err = w.flushFrame(); w.err != nil {
				return 0, w.err
			}
		}
	}
	return total, nil
}

// flushFrame compresses and emits the buffered raw bytes as one frame.
func (w *lzWriter) flushFrame() error {
	raw := w.st.raw
	if len(raw) == 0 {
		return nil
	}
	w.st.comp = lzCompressFrame(w.st.comp[:0], raw, w.st.table)
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(raw)))
	data := w.st.comp
	if len(data) >= len(raw) {
		// Incompressible: store raw so a frame never expands.
		n += binary.PutUvarint(hdr[n:], 0)
		data = raw
	} else {
		n += binary.PutUvarint(hdr[n:], uint64(len(data)))
	}
	w.st.raw = w.st.raw[:0]
	if _, err := w.dst.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.dst.Write(data)
	return err
}

func (w *lzWriter) Close() error {
	if w.st == nil {
		return w.err
	}
	if w.err == nil {
		w.err = w.flushFrame()
	}
	w.st.raw = w.st.raw[:0]
	lzWriterPool.Put(w.st)
	w.st = nil
	if w.err != nil {
		return w.err
	}
	// Poison further writes without disturbing the returned error.
	w.err = errors.New("wirecodec: write after Close")
	return nil
}

// ---------------------------------------------------------------------------
// Streaming reader

// lzReadState is the pooled per-reader working set: the bufio layer
// over the source, the decoded-frame buffer, and the compressed-frame
// scratch.
type lzReadState struct {
	br   *bufio.Reader
	out  []byte
	comp []byte
}

var lzReaderPool = sync.Pool{New: func() any {
	return &lzReadState{br: bufio.NewReaderSize(nil, 32<<10)}
}}

type lzReader struct {
	st  *lzReadState
	off int
	err error
}

func (lzCodec) NewReader(src io.Reader) io.ReadCloser {
	st := lzReaderPool.Get().(*lzReadState)
	st.br.Reset(src)
	st.out = st.out[:0]
	return &lzReader{st: st}
}

func (r *lzReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for r.off == len(r.st.out) {
		if err := r.readFrame(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.st.out[r.off:])
	r.off += n
	return n, nil
}

// readFrame decodes the next frame into st.out.
func (r *lzReader) readFrame() error {
	st := r.st
	rawLen, err := binary.ReadUvarint(st.br)
	if err != nil {
		if err == io.EOF {
			return io.EOF // clean end: stream ends at a frame boundary
		}
		return err
	}
	if rawLen == 0 || rawLen > lzMaxFrameRaw {
		return fmt.Errorf("%w: frame rawLen %d", errLZCorrupt, rawLen)
	}
	compLen, err := binary.ReadUvarint(st.br)
	if err != nil {
		return unexpectedEOF(err)
	}
	if compLen > rawLen {
		return fmt.Errorf("%w: frame compLen %d > rawLen %d", errLZCorrupt, compLen, rawLen)
	}
	if cap(st.out) < int(rawLen) {
		st.out = make([]byte, rawLen)
	}
	st.out = st.out[:rawLen]
	r.off = 0
	if compLen == 0 {
		// Stored frame.
		if _, err := io.ReadFull(st.br, st.out); err != nil {
			return unexpectedEOF(err)
		}
		return nil
	}
	if cap(st.comp) < int(compLen) {
		st.comp = make([]byte, compLen)
	}
	st.comp = st.comp[:compLen]
	if _, err := io.ReadFull(st.br, st.comp); err != nil {
		return unexpectedEOF(err)
	}
	return lzDecompressFrame(st.out, st.comp)
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func (r *lzReader) Close() error {
	if r.st == nil {
		return nil
	}
	r.st.br.Reset(nil)
	r.st.out = r.st.out[:0]
	lzReaderPool.Put(r.st)
	r.st = nil
	if r.err == nil || r.err == io.EOF {
		return nil
	}
	return r.err
}
