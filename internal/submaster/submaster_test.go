package submaster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/core"
	"repro/internal/master"
	"repro/internal/obs"
	"repro/internal/rpcproto"
	"repro/internal/xmlrpc"
)

// harness is a real master with one sub-master running against it.
type harness struct {
	m  *master.Master
	sm *SubMaster
	rt *obs.Runtime
}

func newHarness(t *testing.T, smOpts Options) *harness {
	t.Helper()
	rt := obs.New(nil)
	m, err := master.New(master.Options{LongPoll: 100 * time.Millisecond, Obs: rt})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	smOpts.MasterAddr = m.Addr()
	smOpts.Obs = rt
	if smOpts.FlushInterval == 0 {
		smOpts.FlushInterval = 2 * time.Millisecond
	}
	sm, err := New(smOpts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { sm.Run(ctx); close(done) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("sub-master did not stop")
		}
	})
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := m.WaitForSlaves(wctx, 1); err != nil {
		t.Fatal(err)
	}
	return &harness{m: m, sm: sm, rt: rt}
}

// fakeChild is a scripted leaf speaking the master↔node protocol to
// the sub-master over real XML-RPC.
type fakeChild struct {
	t      *testing.T
	client *xmlrpc.Client
	id     string
}

func attach(t *testing.T, sm *SubMaster, slots int64) *fakeChild {
	t.Helper()
	c := &fakeChild{t: t, client: xmlrpc.NewClient("http://" + sm.Addr() + xmlrpc.RPCPath)}
	args := rpcproto.SigninArgs{Kind: rpcproto.NodeKindSlave, Slots: slots}
	raw, err := c.client.Call(rpcproto.MethodSignin, args.Encode())
	if err != nil {
		t.Fatal(err)
	}
	reply, err := rpcproto.DecodeSigninReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	c.id = reply.SlaveID
	return c
}

// poll asks for work until an assignment (or shutdown) arrives.
func (c *fakeChild) poll(timeout time.Duration) rpcproto.Assignment {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		raw, err := c.client.Call(rpcproto.MethodGetTask, c.id)
		if err != nil {
			c.t.Fatal(err)
		}
		a, err := rpcproto.DecodeAssignment(raw)
		if err != nil {
			c.t.Fatal(err)
		}
		if a.Status != rpcproto.StatusIdle {
			return a
		}
	}
	c.t.Fatalf("child %s: no assignment within %v", c.id, timeout)
	return rpcproto.Assignment{}
}

func (c *fakeChild) done(a rpcproto.Assignment) {
	c.t.Helper()
	outs := rpcproto.EncodeDescriptors([]bucket.Descriptor{
		{Name: fmt.Sprintf("t%d", a.TaskID), URL: "mem:done"},
	})
	if _, err := c.client.Call(rpcproto.MethodTaskDone, c.id, int64(a.Spec.Job), a.TaskID, outs, rpcproto.EncodeTiming(obs.Timing{WallNS: 1000})); err != nil {
		c.t.Fatal(err)
	}
}

func (c *fakeChild) fail(a rpcproto.Assignment, msg string) {
	c.t.Helper()
	if _, err := c.client.Call(rpcproto.MethodTaskFailed, c.id, int64(a.Spec.Job), a.TaskID, msg); err != nil {
		c.t.Fatal(err)
	}
}

func spec(i int) *core.TaskSpec {
	return &core.TaskSpec{
		Op:        &core.Operation{Kind: core.OpMap, FuncName: "m", Splits: 1, Dataset: 1},
		TaskIndex: i,
		InputURLs: []string{"mem:0/none"},
	}
}

func TestTasksFlowThroughTree(t *testing.T) {
	h := newHarness(t, Options{})
	child := attach(t, h.sm, 2)
	if sm := h.sm.ID(); sm == "" || len(child.id) <= len(sm) || child.id[:len(sm)] != sm {
		t.Errorf("child id %q not namespaced under node id %q", child.id, h.sm.ID())
	}

	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		h.m.Submit(spec(i), func(res *core.TaskResult, err error) { results <- err })
	}
	for i := 0; i < 3; i++ {
		child.done(child.poll(5 * time.Second))
	}
	for i := 0; i < 3; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Errorf("task callback error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("master callback never fired")
		}
	}
	if got := h.sm.TasksFetched(); got != 3 {
		t.Errorf("TasksFetched = %d, want 3", got)
	}
	if h.rt.M().Get(obs.MetricSubmasterBatches) == 0 {
		t.Error("no report batches sent")
	}
	if got := h.rt.M().Get(obs.MetricSubmasterReports); got != 3 {
		t.Errorf("reports forwarded = %d, want 3", got)
	}
	// The master's per-node accounting sees the sub-master, not the
	// child.
	nodes := h.m.Nodes()
	if len(nodes) != 1 || nodes[0].Kind != rpcproto.NodeKindSubmaster {
		t.Fatalf("master nodes = %+v", nodes)
	}
	if nodes[0].TasksDone != 3 {
		t.Errorf("node TasksDone = %d, want 3", nodes[0].TasksDone)
	}
}

func TestLocalRetryAbsorbsFailure(t *testing.T) {
	// A child failure inside the local budget is retried by the
	// sub-master without the master ever hearing about it.
	h := newHarness(t, Options{LocalAttempts: 2})
	child := attach(t, h.sm, 1)

	result := make(chan error, 1)
	h.m.Submit(spec(0), func(res *core.TaskResult, err error) { result <- err })

	a := child.poll(5 * time.Second)
	child.fail(a, "transient")
	retry := child.poll(5 * time.Second)
	if retry.TaskID != a.TaskID {
		t.Errorf("retry task id %d, want %d", retry.TaskID, a.TaskID)
	}
	child.done(retry)

	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("task did not recover locally: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master callback never fired")
	}
	if got := h.m.Stats().TasksFailed; got != 0 {
		t.Errorf("master saw %d failures; the retry should have been local", got)
	}
	if got := h.rt.M().Get(obs.MetricSubmasterLocalRetries); got != 1 {
		t.Errorf("local retries metric = %d, want 1", got)
	}
}

func TestLocalExhaustionEscalates(t *testing.T) {
	// Burning the whole local budget escalates the failure upward; the
	// master's own retry budget then re-dispatches the task.
	h := newHarness(t, Options{LocalAttempts: 1})
	child := attach(t, h.sm, 1)

	result := make(chan error, 1)
	h.m.Submit(spec(0), func(res *core.TaskResult, err error) { result <- err })

	child.fail(child.poll(5*time.Second), "hard failure")
	// The master requeues and the sub-master fetches the task again.
	child.done(child.poll(5 * time.Second))

	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("master retry did not recover: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master callback never fired")
	}
	if got := h.m.Stats().TasksFailed; got != 1 {
		t.Errorf("master saw %d failures, want exactly the escalation", got)
	}
}

func TestDrainChildReturnsLeases(t *testing.T) {
	// Draining a child requeues its lease into the local scheduler; a
	// sibling picks it up and the drained child is sent away cleanly.
	h := newHarness(t, Options{})
	c1 := attach(t, h.sm, 1)
	c2 := attach(t, h.sm, 1)

	result := make(chan error, 1)
	h.m.Submit(spec(0), func(res *core.TaskResult, err error) { result <- err })

	a := c1.poll(5 * time.Second)
	if !h.sm.DrainChild(c1.id) {
		t.Fatal("drain refused")
	}
	if bye := c1.poll(5 * time.Second); bye.Status != rpcproto.StatusShutdown {
		t.Errorf("drained child got %q, want shutdown", bye.Status)
	}
	b := c2.poll(5 * time.Second)
	if b.TaskID != a.TaskID {
		t.Errorf("sibling got task %d, want requeued %d", b.TaskID, a.TaskID)
	}
	c2.done(b)
	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("task lost in drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master callback never fired")
	}
	if got := h.sm.ChildCount(); got != 1 {
		t.Errorf("ChildCount = %d after drain, want 1", got)
	}
}
