// Package submaster implements the middle tier of the hierarchical
// control plane: a node that signs in to the master as one aggregated
// worker group while serving the full master↔node protocol to a shard
// of the fleet. Unmodified slaves attach to a sub-master exactly as
// they would to the master — signin, get_task, task_done, task_failed,
// ping — and never learn the tree exists.
//
// Downward, a sub-master owns its shard: child signins, heartbeats and
// reaping, a local sched.Scheduler instance that dispatches the work
// the sub-master holds a lease on, a local retry budget that absorbs
// transient child failures without a master round trip, and fan-out of
// the master's piggybacked delete/GC broadcasts. Upward, it behaves
// like one wide slave: it polls get_task only while its children have
// idle slots (demand-driven fetch, capped at FetchWindow concurrent
// polls), batches its children's task outcomes into report_batch RPCs,
// and heartbeats under a single identity. If the master restarts and
// answers with the unknown-slave fault, the sub-master re-signs in
// under a fresh id without disturbing its children — they only ever
// knew the sub-master's address, so crash-resume composes with the
// tree.
//
// The sub-master carries no data plane. Task payloads flow directly
// between slaves' bucket servers (or the shared filesystem) exactly as
// in the flat topology; only control traffic is aggregated here.
// See docs/DESIGN.md ("Hierarchical control plane").
package submaster

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/xmlrpc"
)

// Options configures a sub-master.
type Options struct {
	// MasterAddr is the parent master's host:port.
	MasterAddr string
	// Addr is the child-facing control listen address
	// (default "127.0.0.1:0").
	Addr string
	// PortFile, when set, receives the child-facing host:port once
	// listening (how out-of-process slaves find their sub-master).
	PortFile string
	// Logger receives diagnostics (default: discard).
	Logger *log.Logger
	// MaxConsecutiveRPCErrors before the sub-master gives up on the
	// master (default 10).
	MaxConsecutiveRPCErrors int
	// RPCIntercept wraps every upward master RPC (fault injection).
	RPCIntercept xmlrpc.Intercept
	// BackoffSeed seeds the retry-jitter stream (0 selects a default).
	BackoffSeed uint64
	// Obs receives the sub-master's control-plane metrics (nil
	// disables).
	Obs *obs.Runtime
	// FetchWindow caps concurrent upward get_task polls (default 4).
	// In-flight tasks are bounded by the children's aggregate slots,
	// not by the window: a fetcher hands its slot to the task it
	// fetched and immediately polls for the next one.
	FetchWindow int
	// FetchBatch caps how many assignments one upward poll may carry
	// (default 16). A fetcher grabs every free child slot up to this
	// cap before polling, so refilling an idle shard costs one
	// get_tasks round trip instead of one RPC per task.
	FetchBatch int
	// FlushInterval is how long a buffered child report may wait
	// before a report_batch carries it upward (default 5ms).
	FlushInterval time.Duration
	// MaxBatch is the report count that forces an immediate flush
	// (default 64).
	MaxBatch int
	// LocalAttempts is the local retry budget per task: how many times
	// a task may fail inside this shard before the failure escalates
	// to the master (default 2).
	LocalAttempts int
	// LongPoll bounds a child's get_task wait (default 1s).
	LongPoll time.Duration
	// HeartbeatInterval paces child heartbeats (default 500ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout reaps silent children (default 5s).
	HeartbeatTimeout time.Duration
	// SpeculationFactor enables shard-local straggler re-execution
	// with this slowness factor (0 disables). The master speculates
	// across nodes; this catches stragglers hidden inside the shard,
	// which the master cannot see through the aggregated identity.
	SpeculationFactor float64
	// DrainLinger bounds how long Run keeps answering children after
	// shutdown begins, so they observe a clean shutdown status instead
	// of a dead socket (default 3s).
	DrainLinger time.Duration
}

type childInfo struct {
	id       string
	addr     string
	slots    int64
	lastSeen time.Time
	draining bool
	tasks    atomic.Int64
}

// SubMaster is one middle-tier node.
type SubMaster struct {
	opts    Options
	client  *xmlrpc.Client
	sched   *sched.Scheduler
	ln      net.Listener
	httpSrv *http.Server
	addr    string
	logger  *log.Logger
	retry   *fault.Backoff

	idMu     sync.Mutex
	id       string // master-assigned; rewritten on upward re-signin
	hbMillis int64  // parent-chosen heartbeat interval

	mu             sync.Mutex
	slotCond       *sync.Cond // waits for used < capacity
	children       map[string]*childInfo
	nextChild      int
	pendingDeletes map[string][]string
	pendingGC      map[string][]int64
	capacity       int // aggregate child slots
	used           int // slots held by fetched or in-flight tasks
	closing        bool

	// local maps a local sched task id to its parent-lease bookkeeping;
	// an entry present after sched.Fail means the failure was absorbed
	// by the local retry budget rather than escalated.
	localMu sync.Mutex
	local   map[sched.TaskID]*localTask

	reportMu sync.Mutex
	reports  []rpcproto.Report
	kick     chan struct{}

	stop     chan struct{} // closed by beginShutdown
	stopOnce sync.Once
	stopHB   chan struct{}
	runErr   error
	wg       sync.WaitGroup // fetchers

	tasksFetched atomic.Int64
	resignins    atomic.Int64
}

type localTask struct {
	job      int64
	parentID int64
}

// New prepares a sub-master: listening for children but not yet signed
// in upward (Run does that).
func New(opts Options) (*SubMaster, error) {
	if opts.MasterAddr == "" {
		return nil, fmt.Errorf("submaster: MasterAddr required")
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.MaxConsecutiveRPCErrors <= 0 {
		opts.MaxConsecutiveRPCErrors = 10
	}
	if opts.FetchWindow <= 0 {
		opts.FetchWindow = 4
	}
	if opts.FetchBatch <= 0 {
		opts.FetchBatch = 16
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 5 * time.Millisecond
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.LocalAttempts <= 0 {
		opts.LocalAttempts = 2
	}
	if opts.LongPoll <= 0 {
		opts.LongPoll = time.Second
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * time.Second
	}
	if opts.DrainLinger <= 0 {
		opts.DrainLinger = 3 * time.Second
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	seed := opts.BackoffSeed
	if seed == 0 {
		seed = 1
	}
	s := &SubMaster{
		opts:           opts,
		client:         xmlrpc.NewClient("http://" + opts.MasterAddr + xmlrpc.RPCPath),
		logger:         logger,
		retry:          fault.NewBackoff(seed),
		children:       map[string]*childInfo{},
		pendingDeletes: map[string][]string{},
		pendingGC:      map[string][]int64{},
		local:          map[sched.TaskID]*localTask{},
		kick:           make(chan struct{}, 1),
		stop:           make(chan struct{}),
		stopHB:         make(chan struct{}),
		hbMillis:       opts.HeartbeatInterval.Milliseconds(),
	}
	s.client.Intercept = opts.RPCIntercept
	s.slotCond = sync.NewCond(&s.mu)

	// The local scheduler dispatches the leases this node holds. Its
	// observer is the shared runtime: with worker-keyed trace spans the
	// child-level attempt lane coexists with the master's node-level
	// lane for the same trace id, which is exactly the two-level view
	// docs/OBSERVABILITY.md describes.
	s.sched = sched.New(opts.LocalAttempts)
	if opts.Obs != nil {
		s.sched.SetObserver(opts.Obs)
	}
	if opts.SpeculationFactor > 0 {
		s.sched.SetSpeculation(sched.SpeculationConfig{SlownessFactor: opts.SpeculationFactor})
	}

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("submaster: listen %s: %w", opts.Addr, err)
	}
	s.ln = ln
	s.addr = ln.Addr().String()

	rpc := xmlrpc.NewServer()
	rpc.Register(rpcproto.MethodSignin, s.handleSignin)
	rpc.Register(rpcproto.MethodGetTask, s.handleGetTask)
	rpc.Register(rpcproto.MethodTaskDone, s.handleTaskDone)
	rpc.Register(rpcproto.MethodTaskFailed, s.handleTaskFailed)
	rpc.Register(rpcproto.MethodPing, s.handlePing)
	rpc.Register(rpcproto.MethodDrain, s.handleDrain)
	rpc.Register(rpcproto.MethodListNodes, s.handleListNodes)
	mux := http.NewServeMux()
	mux.Handle(xmlrpc.RPCPath, rpc)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)

	if opts.PortFile != "" {
		if err := os.WriteFile(opts.PortFile, []byte(s.addr+"\n"), 0o644); err != nil {
			s.httpSrv.Close()
			return nil, fmt.Errorf("submaster: writing port file: %w", err)
		}
	}
	return s, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Addr returns the child-facing control address.
func (s *SubMaster) Addr() string { return s.addr }

// ID returns the master-assigned node id (empty before signin).
func (s *SubMaster) ID() string {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	return s.id
}

func (s *SubMaster) setID(id string) {
	s.idMu.Lock()
	s.id = id
	s.idMu.Unlock()
}

// TasksFetched returns how many assignments this node pulled from the
// master.
func (s *SubMaster) TasksFetched() int64 { return s.tasksFetched.Load() }

// Resignins returns how many times this node re-signed in upward after
// the master stopped recognizing it.
func (s *SubMaster) Resignins() int64 { return s.resignins.Load() }

// ChildCount returns how many children are currently signed in.
func (s *SubMaster) ChildCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.children)
}

// WaitForChildren blocks until n children have signed in.
func (s *SubMaster) WaitForChildren(ctx context.Context, n int) error {
	for {
		if s.ChildCount() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.stop:
			return fmt.Errorf("submaster: shut down while waiting for children")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Run signs in upward and relays work until the master shuts down, the
// context is cancelled, or the master becomes unreachable.
func (s *SubMaster) Run(ctx context.Context) error {
	defer s.cleanup()

	reply, err := s.signinUpward(ctx)
	if err != nil {
		return err
	}
	s.setID(reply.SlaveID)
	s.idMu.Lock()
	s.hbMillis = reply.HeartbeatMillis
	s.idMu.Unlock()

	go s.heartbeat(time.Duration(reply.HeartbeatMillis) * time.Millisecond)
	defer close(s.stopHB)
	reaperStop := make(chan struct{})
	go s.childReaper(reaperStop)
	defer close(reaperStop)
	flusherDone := make(chan struct{})
	go s.flusher(flusherDone)

	s.wg.Add(s.opts.FetchWindow)
	for i := 0; i < s.opts.FetchWindow; i++ {
		go s.fetcher(ctx)
	}

	select {
	case <-ctx.Done():
		s.beginShutdown(ctx.Err())
	case <-s.stop:
	}
	s.wg.Wait()
	close(flusherDone)
	s.flush() // deliver reports buffered after the flusher exited
	if ctx.Err() == nil {
		// Graceful shutdown only: a cancelled context is a kill, and
		// waiting for orphans to poll would just stall the killer.
		s.lingerForChildren()
	}

	s.mu.Lock()
	err = s.runErr
	s.mu.Unlock()
	return err
}

// Close triggers shutdown from outside Run (tests, process teardown).
func (s *SubMaster) Close() {
	s.beginShutdown(nil)
}

// beginShutdown transitions the node to draining: the local scheduler
// closes (waking child polls into a shutdown answer) and fetchers stop.
func (s *SubMaster) beginShutdown(err error) {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		if err != nil {
			s.runErr = err
		}
		s.slotCond.Broadcast()
		s.mu.Unlock()
		// Outside s.mu: Close fires task callbacks, which take s.mu to
		// release their slots.
		s.sched.Close()
		close(s.stop)
	})
}

// lingerForChildren keeps the child-facing server answering until every
// child has polled its shutdown status (or DrainLinger elapses), so
// children exit through the protocol rather than a connection error.
func (s *SubMaster) lingerForChildren() {
	deadline := time.Now().Add(s.opts.DrainLinger)
	for time.Now().Before(deadline) {
		if s.ChildCount() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (s *SubMaster) cleanup() {
	s.httpSrv.Close()
	s.client.CloseIdle()
}

// ---------------------------------------------------------------------------
// Upward side: signin, heartbeat, demand-driven fetch, report batching

func (s *SubMaster) signinUpward(ctx context.Context) (rpcproto.SigninReply, error) {
	args := rpcproto.SigninArgs{
		Kind:  rpcproto.NodeKindSubmaster,
		Addr:  s.addr,
		Slots: int64(s.slotCapacity()),
	}
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		select {
		case <-ctx.Done():
			return rpcproto.SigninReply{}, ctx.Err()
		default:
		}
		raw, err := s.client.Call(rpcproto.MethodSignin, args.Encode())
		if err == nil {
			return rpcproto.DecodeSigninReply(raw)
		}
		lastErr = err
		if !sleepCtx(ctx, s.retry.Delay(attempt+1)) {
			return rpcproto.SigninReply{}, ctx.Err()
		}
	}
	return rpcproto.SigninReply{}, fmt.Errorf("submaster: signin failed: %w", lastErr)
}

// resignin re-establishes the upward identity after an unknown-slave
// fault. Children are untouched: they address this node, not the
// master, so a master restart is invisible below this line (the local
// scheduler keeps dispatching work already fetched). oldID guards
// against concurrent fetchers racing to re-sign-in.
func (s *SubMaster) resignin(ctx context.Context, oldID string) error {
	s.idMu.Lock()
	if s.id != oldID {
		s.idMu.Unlock()
		return nil // another goroutine already re-signed in
	}
	s.idMu.Unlock()
	s.logger.Printf("submaster %s: no longer known to master; re-signing in", oldID)
	reply, err := s.signinUpward(ctx)
	if err != nil {
		return fmt.Errorf("submaster: re-signin: %w", err)
	}
	s.idMu.Lock()
	if s.id == oldID {
		s.id = reply.SlaveID
		s.hbMillis = reply.HeartbeatMillis
		s.resignins.Add(1)
		s.opts.Obs.M().Add(obs.MetricSubmasterResignins, 1)
	}
	s.idMu.Unlock()
	return nil
}

func (s *SubMaster) heartbeat(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopHB:
			return
		case <-tick.C:
			id := s.ID()
			if _, err := s.client.Call(rpcproto.MethodPing, id); err != nil {
				s.logger.Printf("submaster %s: ping: %v", id, err)
			}
		}
	}
}

func (s *SubMaster) slotCapacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity
}

// acquireSlot blocks until a child slot is free (or shutdown). A slot
// is what makes the fetch demand-driven: with no idle child capacity
// the node stops polling the master entirely.
func (s *SubMaster) acquireSlot() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closing && s.used >= s.capacity {
		s.slotCond.Wait()
	}
	if s.closing {
		return false
	}
	s.used++
	return true
}

func (s *SubMaster) releaseSlot() {
	s.releaseSlots(1)
}

func (s *SubMaster) releaseSlots(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.used -= n
	s.slotCond.Broadcast()
	s.mu.Unlock()
}

// tryAcquireSlots grabs up to n additional free slots without
// blocking, returning how many it got. The fetcher calls it right
// before an upward poll so one get_tasks round trip can refill every
// idle child at once.
func (s *SubMaster) tryAcquireSlots(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return 0
	}
	got := 0
	for got < n && s.used < s.capacity {
		s.used++
		got++
	}
	return got
}

// fetcher is one upward polling loop. It owns at most one slot at a
// time: while holding it, it polls the master until it fetches a task
// (the slot transfers to the task and releases on completion) or the
// master signals shutdown.
func (s *SubMaster) fetcher(ctx context.Context) {
	defer s.wg.Done()
	consecutive := 0
	for {
		if !s.acquireSlot() {
			return
		}
		if !s.fetchWithSlot(ctx, &consecutive) {
			return
		}
	}
}

// fetchWithSlot polls until the held slot is handed to a task (true) or
// the fetcher should exit (false, slot released). Each poll also grabs
// every other free child slot (up to FetchBatch) and asks the master
// for that many assignments in one get_tasks round trip, so refilling
// an idle shard costs one RPC instead of one per task.
func (s *SubMaster) fetchWithSlot(ctx context.Context, consecutive *int) bool {
	for {
		select {
		case <-ctx.Done():
			s.releaseSlot()
			s.beginShutdown(ctx.Err())
			return false
		case <-s.stop:
			s.releaseSlot()
			return false
		default:
		}
		id := s.ID()
		extra := s.tryAcquireSlots(s.opts.FetchBatch - 1)
		raw, err := s.client.Call(rpcproto.MethodGetTasks, id, int64(1+extra))
		if err != nil {
			s.releaseSlots(extra)
			if rpcproto.IsUnknownSlave(err) {
				if rerr := s.resignin(ctx, id); rerr != nil {
					s.releaseSlot()
					s.beginShutdown(rerr)
					return false
				}
				*consecutive = 0
				continue
			}
			*consecutive++
			s.logger.Printf("submaster %s: get_tasks: %v", id, err)
			if *consecutive >= s.opts.MaxConsecutiveRPCErrors {
				s.releaseSlot()
				s.beginShutdown(fmt.Errorf("submaster: master unreachable: %w", err))
				return false
			}
			if !sleepCtx(ctx, s.retry.Delay(*consecutive)) {
				s.releaseSlot()
				s.beginShutdown(ctx.Err())
				return false
			}
			continue
		}
		*consecutive = 0
		as, err := rpcproto.DecodeAssignments(raw)
		if err == nil && len(as) == 0 {
			err = fmt.Errorf("empty reply")
		}
		if err != nil {
			s.releaseSlots(1 + extra)
			s.beginShutdown(fmt.Errorf("submaster: bad get_tasks reply: %w", err))
			return false
		}
		first := as[0]
		s.relay(first.Deletes, first.GCJobs)
		switch first.Status {
		case rpcproto.StatusShutdown:
			s.releaseSlots(1 + extra)
			s.beginShutdown(nil)
			return false
		case rpcproto.StatusIdle:
			// Master paced us via its long poll; keep the base slot for
			// the next poll, return the rest to the pool.
			s.releaseSlots(extra)
			continue
		case rpcproto.StatusTask:
			// Hand each fetched task one of the held slots; surplus
			// slots return to the pool.
			held := 1 + extra
			for _, a := range as {
				if !s.submitLocal(a) {
					s.releaseSlots(held)
					return false
				}
				held--
			}
			s.releaseSlots(held)
			return true
		default:
			s.releaseSlots(1 + extra)
			s.beginShutdown(fmt.Errorf("submaster: bad assignment status %q", first.Status))
			return false
		}
	}
}

// submitLocal enters a fetched assignment into the local scheduler.
// The completion callback releases the slot and enqueues the upward
// report under the parent's task id.
func (s *SubMaster) submitLocal(a rpcproto.Assignment) bool {
	lt := &localTask{job: int64(a.Spec.Job), parentID: a.TaskID}
	var localID sched.TaskID
	// localMu is held across Submit (which never fires the callback
	// synchronously) so the callback observes localID assigned.
	s.localMu.Lock()
	id, err := s.sched.Submit(a.Spec, func(res *core.TaskResult, err error) {
		defer s.releaseSlot()
		s.localMu.Lock()
		delete(s.local, localID)
		s.localMu.Unlock()
		if err != nil {
			if err == sched.ErrClosed {
				// Shutting down: the master's lease on this task will
				// requeue it elsewhere; reporting a failure would burn
				// one of its global attempts for a local non-failure.
				return
			}
			s.enqueueReport(rpcproto.Report{Job: lt.job, TaskID: lt.parentID, Err: err.Error()})
			return
		}
		s.enqueueReport(rpcproto.Report{
			Done:    true,
			Job:     lt.job,
			TaskID:  lt.parentID,
			Outputs: res.Outputs,
			Timing:  res.Timing,
		})
	})
	if err != nil {
		s.localMu.Unlock()
		return false // closed
	}
	localID = id
	s.local[id] = lt
	s.localMu.Unlock()
	s.tasksFetched.Add(1)
	s.opts.Obs.M().Add(obs.MetricSubmasterFetched, 1)
	return true
}

// relay fans the master's piggybacked broadcasts out to every child
// and applies job GC to local scheduling state.
func (s *SubMaster) relay(deletes []string, gcJobs []int64) {
	if len(deletes) == 0 && len(gcJobs) == 0 {
		return
	}
	s.mu.Lock()
	for id := range s.children {
		if len(deletes) > 0 {
			s.pendingDeletes[id] = append(s.pendingDeletes[id], deletes...)
		}
		if len(gcJobs) > 0 {
			s.pendingGC[id] = append(s.pendingGC[id], gcJobs...)
		}
	}
	s.mu.Unlock()
	for _, j := range gcJobs {
		s.sched.JobDone(core.JobID(j))
	}
}

// enqueueReport buffers one upward task outcome; a full buffer forces
// an immediate flush.
func (s *SubMaster) enqueueReport(r rpcproto.Report) {
	s.reportMu.Lock()
	s.reports = append(s.reports, r)
	full := len(s.reports) >= s.opts.MaxBatch
	s.reportMu.Unlock()
	s.opts.Obs.M().Add(obs.MetricSubmasterReports, 1)
	if full {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

func (s *SubMaster) flusher(done chan struct{}) {
	tick := time.NewTicker(s.opts.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-s.kick:
		case <-tick.C:
		}
		s.flush()
	}
}

// reportRetries bounds report_batch delivery attempts; like a slave's
// task reports, losing a batch is survivable (the master's task lease
// recovers the work) but expensive.
const reportRetries = 6

// flush delivers all buffered reports upward in MaxBatch-sized
// report_batch calls.
func (s *SubMaster) flush() {
	for {
		s.reportMu.Lock()
		n := len(s.reports)
		if n == 0 {
			s.reportMu.Unlock()
			return
		}
		if n > s.opts.MaxBatch {
			n = s.opts.MaxBatch
		}
		batch := make([]rpcproto.Report, n)
		copy(batch, s.reports)
		s.reports = append(s.reports[:0], s.reports[n:]...)
		s.reportMu.Unlock()
		s.deliver(batch)
	}
}

func (s *SubMaster) deliver(batch []rpcproto.Report) {
	s.opts.Obs.M().Add(obs.MetricSubmasterBatches, 1)
	var lastErr error
	for attempt := 1; attempt <= reportRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(s.retry.Delay(attempt - 1))
		}
		id := s.ID()
		_, err := s.client.Call(rpcproto.MethodReportBatch, id, rpcproto.EncodeReports(batch))
		if err == nil {
			return
		}
		lastErr = err
		if rpcproto.IsUnknownSlave(err) {
			// The master processed the batch before faulting; only the
			// identity needs repair.
			if rerr := s.resignin(context.Background(), id); rerr != nil {
				s.logger.Printf("submaster: %v", rerr)
			}
			return
		}
		if _, isFault := err.(*xmlrpc.Fault); isFault {
			break // server-side rejection is final
		}
	}
	s.logger.Printf("submaster %s: report_batch (%d reports) undelivered: %v", s.ID(), len(batch), lastErr)
}

// ---------------------------------------------------------------------------
// Downward side: the master↔node protocol served to children

func (s *SubMaster) handleSignin(args []any) (any, error) {
	node := rpcproto.DecodeSigninArgs(args)
	slots := node.Slots
	if slots <= 0 {
		slots = 1 // pre-tree slaves advertise nothing; assume one slot
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, fmt.Errorf("submaster: closed")
	}
	s.nextChild++
	id := fmt.Sprintf("c%d", s.nextChild)
	if sm := s.ID(); sm != "" {
		// Child ids carry the upward identity so trace lanes and
		// list_nodes rows are unambiguous fleet-wide.
		id = sm + "." + id
	}
	s.children[id] = &childInfo{
		id:       id,
		addr:     node.Addr,
		slots:    slots,
		lastSeen: time.Now(),
	}
	s.capacity += int(slots)
	s.slotCond.Broadcast()
	s.mu.Unlock()
	s.opts.Obs.M().Add(obs.MetricSubmasterChildSignins, 1)
	s.idMu.Lock()
	hb := s.hbMillis
	s.idMu.Unlock()
	return rpcproto.SigninReply{SlaveID: id, HeartbeatMillis: hb}.Encode(), nil
}

// touchChild refreshes a child's liveness; false for unknown children.
func (s *SubMaster) touchChild(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.children[id]
	if !ok {
		return false
	}
	c.lastSeen = time.Now()
	return true
}

func unknownChildFault(id string) *xmlrpc.Fault {
	return &xmlrpc.Fault{
		Code:    rpcproto.FaultUnknownSlave,
		Message: fmt.Sprintf("submaster: unknown child %s (declared dead?)", id),
	}
}

func childIDArg(args []any) (string, error) {
	if len(args) < 1 {
		return "", fmt.Errorf("submaster: missing child id")
	}
	id, ok := args[0].(string)
	if !ok || id == "" {
		return "", fmt.Errorf("submaster: bad child id %v", args[0])
	}
	return id, nil
}

func (s *SubMaster) handlePing(args []any) (any, error) {
	id, err := childIDArg(args)
	if err != nil {
		return nil, err
	}
	if !s.touchChild(id) {
		return nil, unknownChildFault(id)
	}
	return true, nil
}

func (s *SubMaster) handleGetTask(args []any) (any, error) {
	id, err := childIDArg(args)
	if err != nil {
		return nil, err
	}
	if !s.touchChild(id) {
		return nil, unknownChildFault(id)
	}
	s.mu.Lock()
	deletes := s.pendingDeletes[id]
	delete(s.pendingDeletes, id)
	gcJobs := s.pendingGC[id]
	delete(s.pendingGC, id)
	leaving := s.closing
	if c := s.children[id]; c != nil && c.draining {
		leaving = true
	}
	if leaving {
		// The child is done here — shutting down with us, or drained
		// out from under us. Forget it and send it away cleanly.
		s.forgetChildLocked(id)
	}
	s.mu.Unlock()
	if leaving {
		return encodeAssignment(rpcproto.Assignment{Status: rpcproto.StatusShutdown, Deletes: deletes, GCJobs: gcJobs})
	}
	task, attempt, err := s.sched.RequestAttempt(id, s.opts.LongPoll)
	if err == sched.ErrClosed {
		s.mu.Lock()
		s.forgetChildLocked(id)
		s.mu.Unlock()
		return encodeAssignment(rpcproto.Assignment{Status: rpcproto.StatusShutdown, Deletes: deletes, GCJobs: gcJobs})
	}
	if err != nil {
		return nil, err
	}
	s.touchChild(id) // the long poll may have taken a while
	if task == nil {
		return encodeAssignment(rpcproto.Assignment{Status: rpcproto.StatusIdle, Deletes: deletes, GCJobs: gcJobs})
	}
	return encodeAssignment(rpcproto.Assignment{
		Status:  rpcproto.StatusTask,
		TaskID:  int64(task.ID),
		Attempt: int64(attempt),
		Spec:    task.Spec,
		Deletes: deletes,
		GCJobs:  gcJobs,
	})
}

func encodeAssignment(a rpcproto.Assignment) (any, error) {
	return a.Encode()
}

func (s *SubMaster) handleTaskDone(args []any) (any, error) {
	if len(args) < 4 {
		return nil, fmt.Errorf("submaster: task_done wants (child, job, task, outputs[, timing])")
	}
	id, err := childIDArg(args)
	if err != nil {
		return nil, err
	}
	taskID, ok := args[2].(int64)
	if !ok {
		return nil, fmt.Errorf("submaster: bad task id %v", args[2])
	}
	outputs, err := rpcproto.DecodeDescriptors(args[3])
	if err != nil {
		return nil, err
	}
	result := &core.TaskResult{Outputs: outputs}
	if len(args) >= 5 {
		result.Timing = rpcproto.DecodeTiming(args[4])
	}
	known := s.touchChild(id)
	// Accept the result even from a forgotten child; the local
	// scheduler sorts accepted completions from stale ones, exactly as
	// the master does.
	if _, err := s.sched.CompleteTask(sched.TaskID(taskID), id, result); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if c := s.children[id]; c != nil {
		c.tasks.Add(1)
	}
	s.mu.Unlock()
	if !known {
		return nil, unknownChildFault(id)
	}
	return true, nil
}

func (s *SubMaster) handleTaskFailed(args []any) (any, error) {
	if len(args) < 4 {
		return nil, fmt.Errorf("submaster: task_failed wants (child, job, task, message)")
	}
	id, err := childIDArg(args)
	if err != nil {
		return nil, err
	}
	taskID, ok := args[2].(int64)
	if !ok {
		return nil, fmt.Errorf("submaster: bad task id %v", args[2])
	}
	msg, _ := args[3].(string)
	known := s.touchChild(id)
	if err := s.sched.Fail(sched.TaskID(taskID), id, msg); err != nil {
		return nil, err
	}
	// If the task survived the failure it is queued for another local
	// attempt: the retry was absorbed inside the shard, no master round
	// trip. Exhausted tasks escalated via their callback instead and
	// are no longer tracked.
	s.localMu.Lock()
	_, retrying := s.local[sched.TaskID(taskID)]
	s.localMu.Unlock()
	if retrying {
		s.opts.Obs.M().Add(obs.MetricSubmasterLocalRetries, 1)
	}
	if !known {
		return nil, unknownChildFault(id)
	}
	return true, nil
}

// handleDrain takes one child out of rotation, mirroring the master's
// drain-by-id-or-address semantics one level down.
func (s *SubMaster) handleDrain(args []any) (any, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("submaster: drain wants a node id or address")
	}
	target, _ := args[0].(string)
	return s.DrainChild(target), nil
}

// DrainChild marks a child draining: its leases requeue into the local
// scheduler immediately and its next get_task answers shutdown.
func (s *SubMaster) DrainChild(target string) bool {
	s.mu.Lock()
	var c *childInfo
	if ci, ok := s.children[target]; ok {
		c = ci
	} else {
		for _, ci := range s.children {
			if ci.addr != "" && ci.addr == target {
				c = ci
				break
			}
		}
	}
	if c == nil || c.draining {
		s.mu.Unlock()
		return false
	}
	c.draining = true
	s.capacity -= int(c.slots)
	s.slotCond.Broadcast()
	s.mu.Unlock()
	s.sched.Drain(c.id)
	return true
}

func (s *SubMaster) handleListNodes(args []any) (any, error) {
	return rpcproto.EncodeNodeInfos(s.Nodes()), nil
}

// Nodes returns a snapshot of the children, sorted by id.
func (s *SubMaster) Nodes() []rpcproto.NodeInfo {
	s.mu.Lock()
	out := make([]rpcproto.NodeInfo, 0, len(s.children))
	for _, c := range s.children {
		out = append(out, rpcproto.NodeInfo{
			ID:        c.id,
			Kind:      rpcproto.NodeKindSlave,
			Addr:      c.addr,
			Slots:     c.slots,
			TasksDone: c.tasks.Load(),
			Draining:  c.draining,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// forgetChildLocked removes a child from the registry and returns its
// slots to nobody: capacity shrinks unless the child was already
// draining (its slots left capacity when the drain started).
func (s *SubMaster) forgetChildLocked(id string) {
	c, ok := s.children[id]
	if !ok {
		return
	}
	delete(s.children, id)
	delete(s.pendingDeletes, id)
	delete(s.pendingGC, id)
	if !c.draining {
		s.capacity -= int(c.slots)
		s.slotCond.Broadcast()
	}
}

// childReaper declares silent children dead: their leases requeue into
// the local scheduler and their slots leave the aggregate capacity. It
// also drives shard-local speculation when configured.
func (s *SubMaster) childReaper(stop chan struct{}) {
	interval := s.opts.HeartbeatTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-s.opts.HeartbeatTimeout)
		var dead []string
		s.mu.Lock()
		for id, c := range s.children {
			if c.lastSeen.Before(cutoff) {
				dead = append(dead, id)
			}
		}
		for _, id := range dead {
			s.logger.Printf("submaster %s: child %s silent; declaring dead", s.ID(), id)
			s.forgetChildLocked(id)
		}
		s.mu.Unlock()
		for _, id := range dead {
			s.sched.SlaveDead(id)
		}
		if s.opts.SpeculationFactor > 0 {
			s.sched.Speculate()
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
