// Package pbs reproduces the subjective evaluation of §V-A: the
// comparison of the PBS startup scripts needed to run a Mrs job
// (Program 3: four steps) versus a Hadoop job (Program 4: six major
// parts, daemon management, HDFS formatting and staging). It models a
// batch allocation, executes the step sequences against a simulated
// cluster clock, and emits the actual script text so the comparison is
// concrete rather than anecdotal.
package pbs

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hdfssim"
)

// Step is one action a startup script performs.
type Step struct {
	// Name is a short description.
	Name string
	// Part groups steps into the numbered parts of Programs 3/4.
	Part int
	// Cost is the simulated wall time of the step.
	Cost time.Duration
	// EditsConfig marks steps that must rewrite configuration files
	// (the paper calls out Hadoop's "sed" line as a complexity smell).
	EditsConfig bool
	// PerNode marks steps repeated across allocation nodes (their cost
	// is charged once; parallel-ssh style fan-out).
	PerNode bool
}

// Script is a named sequence of steps plus its shell text.
type Script struct {
	Name  string
	Steps []Step
	Text  string
}

// Parts returns the number of distinct major parts.
func (s Script) Parts() int {
	seen := map[int]bool{}
	for _, st := range s.Steps {
		seen[st.Part] = true
	}
	return len(seen)
}

// ConfigEdits counts configuration-rewriting steps.
func (s Script) ConfigEdits() int {
	n := 0
	for _, st := range s.Steps {
		if st.EditsConfig {
			n++
		}
	}
	return n
}

// StartupTime sums the step costs.
func (s Script) StartupTime() time.Duration {
	var total time.Duration
	for _, st := range s.Steps {
		total += st.Cost
	}
	return total
}

// Lines counts non-empty, non-comment script lines.
func (s Script) Lines() int {
	n := 0
	for _, line := range strings.Split(s.Text, "\n") {
		trim := strings.TrimSpace(line)
		if trim != "" && !strings.HasPrefix(trim, "#") {
			n++
		}
	}
	return n
}

// MrsScript models Program 3: find the address, start the master, wait
// for the port file, start the slaves.
func MrsScript(nodes int) Script {
	return Script{
		Name: "mrs",
		Steps: []Step{
			{Name: "find network address", Part: 1, Cost: 100 * time.Millisecond},
			{Name: "start master", Part: 2, Cost: 2 * time.Second},
			{Name: "wait for port file", Part: 3, Cost: 1 * time.Second},
			{Name: "start slaves (pbsdsh)", Part: 4, Cost: 2 * time.Second, PerNode: true},
		},
		Text: mrsScriptText,
	}
}

// HadoopOptions tunes the Hadoop script model.
type HadoopOptions struct {
	// Nodes in the allocation.
	Nodes int
	// StageInBytes/StageOutBytes copied through HDFS around the job.
	StageInBytes  int64
	StageOutBytes int64
	// InputFiles staged in.
	InputFiles int
	// HDFS cost model.
	HDFS hdfssim.Costs
}

// HadoopScript models Program 4: configuration templating, daemon
// startup on master and slaves, HDFS format, staging in and out, and
// daemon shutdown.
func HadoopScript(opts HadoopOptions) Script {
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	if opts.HDFS == (hdfssim.Costs{}) {
		opts.HDFS = hdfssim.DefaultCosts()
	}
	steps := []Step{
		{Name: "find network address", Part: 1, Cost: 100 * time.Millisecond},
		{Name: "create log/conf dirs", Part: 2, Cost: 200 * time.Millisecond},
		{Name: "template hadoop-site.xml (sed)", Part: 2, Cost: 300 * time.Millisecond, EditsConfig: true},
		{Name: "format namenode", Part: 3, Cost: opts.HDFS.Format},
		{Name: "start namenode daemon", Part: 3, Cost: 5 * time.Second},
		{Name: "start jobtracker daemon", Part: 3, Cost: 5 * time.Second},
		{Name: "start datanode+tasktracker on slaves", Part: 4, Cost: 10 * time.Second, PerNode: true},
		{Name: "wait for HDFS out of safe mode", Part: 4, Cost: 15 * time.Second},
		{Name: "copy input into HDFS", Part: 5, Cost: opts.HDFS.StageTime(opts.InputFiles, opts.StageInBytes)},
		{Name: "run MapReduce job", Part: 5, Cost: 0}, // job time measured separately
		{Name: "copy output out of HDFS", Part: 5, Cost: opts.HDFS.StageTime(1, opts.StageOutBytes)},
		{Name: "stop daemons on master and slaves", Part: 6, Cost: 5 * time.Second, PerNode: true},
	}
	return Script{Name: "hadoop", Steps: steps, Text: hadoopScriptText}
}

// Comparison is the quantified Programs 3-vs-4 result.
type Comparison struct {
	Mrs, Hadoop Script
}

// Compare builds both scripts for the same allocation and workload.
func Compare(nodes int, stageIn int64, inputFiles int) Comparison {
	return Comparison{
		Mrs: MrsScript(nodes),
		Hadoop: HadoopScript(HadoopOptions{
			Nodes:        nodes,
			StageInBytes: stageIn,
			InputFiles:   inputFiles,
		}),
	}
}

// String renders the comparison table.
func (c Comparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %10s %10s\n", "metric", "mrs", "hadoop")
	fmt.Fprintf(&sb, "%-28s %10d %10d\n", "major parts", c.Mrs.Parts(), c.Hadoop.Parts())
	fmt.Fprintf(&sb, "%-28s %10d %10d\n", "steps", len(c.Mrs.Steps), len(c.Hadoop.Steps))
	fmt.Fprintf(&sb, "%-28s %10d %10d\n", "script lines", c.Mrs.Lines(), c.Hadoop.Lines())
	fmt.Fprintf(&sb, "%-28s %10d %10d\n", "config files edited", c.Mrs.ConfigEdits(), c.Hadoop.ConfigEdits())
	fmt.Fprintf(&sb, "%-28s %10s %10s\n", "simulated startup",
		c.Mrs.StartupTime().Round(100*time.Millisecond).String(),
		c.Hadoop.StartupTime().Round(100*time.Millisecond).String())
	return sb.String()
}

// mrsScriptText is the Go-flavored equivalent of Program 3.
const mrsScriptText = `#!/bin/bash
#PBS -l nodes=8:ppn=6

# Step 1: Find the network address.
ADDR=$(/sbin/ip -o -4 addr list "$INTERFACE" | sed -e 's;^.*inet \(.*\)/.*$;\1;')

# Step 2: Start the master.
$MRS_BIN -mrs=master -mrs-addr="$ADDR:0" -mrs-portfile="$PORT_FILE" "$@" &

# Step 3: Wait for the master to start.
while [[ ! -e $PORT_FILE ]]; do sleep 1; done
PORT=$(cat $PORT_FILE)

# Step 4: Start the slaves.
pbsdsh -u $MRS_BIN -mrs=slave -mrs-master="$ADDR:${PORT##*:}"
`

// hadoopScriptText is the Go-flavored equivalent of Program 4.
const hadoopScriptText = `#!/bin/bash
#PBS -l nodes=8:ppn=6

# Step 1: Find the network address.
ADDR=$(/sbin/ip -o -4 addr list "$INTERFACE" | sed -e 's;^.*inet \(.*\)/.*$;\1;')

# Step 2: Set up the Hadoop configuration.
export HADOOP_LOG_DIR=$JOBDIR/log
mkdir $HADOOP_LOG_DIR
export HADOOP_CONF_DIR=$JOBDIR/conf
cp -R $HADOOP_HOME/conf $HADOOP_CONF_DIR
sed -e "s/MASTER_IP_ADDRESS/$ADDR/g" \
    -e "s@HADOOP_TMP_DIR@$JOBDIR/tmp@g" \
    -e "s/MAP_TASKS/$MAP_TASKS/g" \
    -e "s/REDUCE_TASKS/$REDUCE_TASKS/g" \
    -e "s/TASKS_PER_NODE/$TASKS_PER_NODE/g" \
    <$HADOOP_HOME/conf/hadoop-site.xml \
    >$HADOOP_CONF_DIR/hadoop-site.xml

# Step 3: Start daemons on the master.
HADOOP="$HADOOP_HOME/bin/hadoop"
$HADOOP namenode -format
$HADOOP_HOME/bin/hadoop-daemon.sh start namenode
$HADOOP_HOME/bin/hadoop-daemon.sh start jobtracker

# Step 4: Start daemons on the slaves.
pbsdsh -u $HADOOP_HOME/bin/hadoop-daemon.sh start datanode
pbsdsh -u $HADOOP_HOME/bin/hadoop-daemon.sh start tasktracker
$HADOOP dfsadmin -safemode wait

# Step 5: Stage data, run the job, stage results.
$HADOOP fs -copyFromLocal $INPUT_DIR /input
$HADOOP jar $JOBJAR $JOBCLASS /input /output
$HADOOP fs -copyToLocal /output $OUTPUT_DIR

# Step 6: Stop the daemons.
pbsdsh -u $HADOOP_HOME/bin/hadoop-daemon.sh stop tasktracker
pbsdsh -u $HADOOP_HOME/bin/hadoop-daemon.sh stop datanode
$HADOOP_HOME/bin/hadoop-daemon.sh stop jobtracker
$HADOOP_HOME/bin/hadoop-daemon.sh stop namenode
`
