package pbs

import (
	"strings"
	"testing"
	"time"
)

func TestMrsScriptHasFourParts(t *testing.T) {
	s := MrsScript(8)
	if s.Parts() != 4 {
		t.Errorf("Mrs parts = %d, want 4 (Program 3)", s.Parts())
	}
	if s.ConfigEdits() != 0 {
		t.Errorf("Mrs edits %d config files, want 0", s.ConfigEdits())
	}
}

func TestHadoopScriptHasSixParts(t *testing.T) {
	s := HadoopScript(HadoopOptions{Nodes: 8})
	if s.Parts() != 6 {
		t.Errorf("Hadoop parts = %d, want 6 (Program 4)", s.Parts())
	}
	if s.ConfigEdits() == 0 {
		t.Error("Hadoop script should require config edits (the sed line)")
	}
}

func TestHadoopStartupSlower(t *testing.T) {
	c := Compare(8, 1<<30, 1000)
	if c.Hadoop.StartupTime() <= c.Mrs.StartupTime() {
		t.Errorf("Hadoop startup %v should exceed Mrs %v",
			c.Hadoop.StartupTime(), c.Mrs.StartupTime())
	}
	// The gap should be an order of magnitude, not marginal.
	if c.Hadoop.StartupTime() < 5*c.Mrs.StartupTime() {
		t.Errorf("gap too small: %v vs %v", c.Hadoop.StartupTime(), c.Mrs.StartupTime())
	}
}

func TestMrsStartupAroundPaperValue(t *testing.T) {
	// The paper: Mrs startup "is about 2 seconds" plus slave launch.
	s := MrsScript(8)
	if s.StartupTime() < 2*time.Second || s.StartupTime() > 10*time.Second {
		t.Errorf("Mrs startup %v implausible", s.StartupTime())
	}
}

func TestScriptTextsNonTrivial(t *testing.T) {
	m, h := MrsScript(1), HadoopScript(HadoopOptions{})
	if m.Lines() == 0 || h.Lines() == 0 {
		t.Fatal("script text missing")
	}
	if h.Lines() <= m.Lines() {
		t.Errorf("Hadoop script (%d lines) should be longer than Mrs (%d)", h.Lines(), m.Lines())
	}
	if !strings.Contains(h.Text, "namenode -format") {
		t.Error("Hadoop script must format HDFS")
	}
	if !strings.Contains(m.Text, "PORT_FILE") {
		t.Error("Mrs script must use the port file discovery mechanism")
	}
}

func TestStagingScalesWithData(t *testing.T) {
	small := HadoopScript(HadoopOptions{StageInBytes: 1 << 20, InputFiles: 10})
	big := HadoopScript(HadoopOptions{StageInBytes: 10 << 30, InputFiles: 10})
	if big.StartupTime() <= small.StartupTime() {
		t.Error("staging cost should grow with data size")
	}
}

func TestComparisonString(t *testing.T) {
	out := Compare(8, 1<<30, 100).String()
	for _, want := range []string{"major parts", "mrs", "hadoop", "config files edited"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q:\n%s", want, out)
		}
	}
}

func TestProgramComparison(t *testing.T) {
	p := NewProgramComparison()
	if p.MrsLines() == 0 || p.HadoopLines() == 0 {
		t.Fatal("embedded sources missing")
	}
	if p.MrsLines() >= p.HadoopLines() {
		t.Errorf("mrs WordCount (%d lines) should be shorter than Hadoop's (%d)",
			p.MrsLines(), p.HadoopLines())
	}
	out := p.String()
	if !strings.Contains(out, "code lines") {
		t.Errorf("missing table row:\n%s", out)
	}
}

func TestCodeLines(t *testing.T) {
	src := "// comment\n\nreal line\n  * javadoc cont\n# hash\nanother\n"
	if got := codeLines(src); got != 2 {
		t.Errorf("codeLines = %d, want 2", got)
	}
}
