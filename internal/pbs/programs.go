package pbs

import (
	"fmt"
	"strings"
)

// ProgramComparison quantifies the Programs 1-vs-2 comparison of §V-A:
// the same WordCount written against this library's API versus the
// Hadoop/Java original reproduced from the paper.
type ProgramComparison struct {
	MrsSource    string
	HadoopSource string
}

// NewProgramComparison returns the embedded sources.
func NewProgramComparison() ProgramComparison {
	return ProgramComparison{MrsSource: mrsWordCountSource, HadoopSource: hadoopWordCountSource}
}

// codeLines counts non-blank, non-comment lines.
func codeLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") || strings.HasPrefix(t, "#") ||
			strings.HasPrefix(t, "*") || strings.HasPrefix(t, "/*") {
			continue
		}
		n++
	}
	return n
}

// MrsLines returns the code-line count of the mrs WordCount.
func (p ProgramComparison) MrsLines() int { return codeLines(p.MrsSource) }

// HadoopLines returns the code-line count of the Hadoop WordCount.
func (p ProgramComparison) HadoopLines() int { return codeLines(p.HadoopSource) }

// String renders the comparison.
func (p ProgramComparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %10s %10s\n", "metric", "mrs-go", "hadoop")
	fmt.Fprintf(&sb, "%-28s %10d %10d\n", "code lines", p.MrsLines(), p.HadoopLines())
	fmt.Fprintf(&sb, "%-28s %10d %10d\n", "bytes", len(p.MrsSource), len(p.HadoopSource))
	return sb.String()
}

// mrsWordCountSource is the complete WordCount against this library
// (the Go analogue of the paper's 11-line Program 1; Go's type system
// and error handling cost some lines relative to Python, which the
// comparison should honestly reflect).
const mrsWordCountSource = `package main

import (
	"bytes"

	mrs "repro"
	"repro/internal/codec"
)

type WordCount struct{}

func (WordCount) Register(reg *mrs.Registry) error {
	reg.RegisterMap("map", func(key, value []byte, emit mrs.Emitter) error {
		for _, w := range bytes.Fields(value) {
			if err := emit.Emit(w, codec.EncodeVarint(1)); err != nil {
				return err
			}
		}
		return nil
	})
	reg.RegisterReduce("reduce", func(key []byte, values [][]byte, emit mrs.Emitter) error {
		var n int64
		for _, v := range values {
			c, err := codec.DecodeVarint(v)
			if err != nil {
				return err
			}
			n += c
		}
		return emit.Emit(key, codec.EncodeVarint(n))
	})
	return nil
}

func (WordCount) Run(job *mrs.Job) error {
	src, err := job.TextFileData(inputPaths())
	if err != nil {
		return err
	}
	out, err := job.MapReduce(src, "map", "reduce",
		mrs.OpOpts{Combine: "reduce"}, mrs.OpOpts{})
	if err != nil {
		return err
	}
	return writeOutput(out)
}

func main() {
	mrs.Main(WordCount{})
}
`

// hadoopWordCountSource is Program 2 from the paper: the WordCount
// example shipped with Hadoop (imports omitted there, and here).
const hadoopWordCountSource = `public class WordCount {

  public static class TokenizerMapper
       extends Mapper<Object, Text, Text, IntWritable>{

    private final static IntWritable one = new IntWritable(1);
    private Text word = new Text();

    public void map(Object key, Text value, Context context
                    ) throws IOException, InterruptedException {
      StringTokenizer itr = new StringTokenizer(value.toString());
      while (itr.hasMoreTokens()) {
        word.set(itr.nextToken());
        context.write(word, one);
      }
    }
  }

  public static class IntSumReducer
       extends Reducer<Text,IntWritable,Text,IntWritable> {
    private IntWritable result = new IntWritable();

    public void reduce(Text key, Iterable<IntWritable> values,
                       Context context
                       ) throws IOException, InterruptedException {
      int sum = 0;
      for (IntWritable val : values) {
        sum += val.get();
      }
      result.set(sum);
      context.write(key, result);
    }
  }

  public static void main(String[] args) throws Exception {
    Configuration conf = new Configuration();
    String[] otherArgs = new GenericOptionsParser(conf, args).getRemainingArgs();
    if (otherArgs.length != 2) {
      System.err.println("Usage: wordcount <in> <out>");
      System.exit(2);
    }
    Job job = new Job(conf, "word count");
    job.setJarByClass(WordCount.class);
    job.setMapperClass(TokenizerMapper.class);
    job.setCombinerClass(IntSumReducer.class);
    job.setReducerClass(IntSumReducer.class);
    job.setOutputKeyClass(Text.class);
    job.setOutputValueClass(IntWritable.class);
    FileInputFormat.addInputPath(job, new Path(otherArgs[0]));
    FileOutputFormat.setOutputPath(job, new Path(otherArgs[1]));
    System.exit(job.waitForCompletion(true) ? 0 : 1);
  }
}
`
