// Package master implements the distributed master: it serves the
// XML-RPC control plane, tracks slave liveness via heartbeats, drives
// the task scheduler, and acts as a core.Executor so programs run on a
// cluster exactly as they run serially.
//
// Mirroring §IV of the Mrs paper: starting a job requires only starting
// one master and any number of slaves; no daemons or config files. The
// master writes its address to a port file so startup scripts (and the
// pbs simulator) can hand it to slaves.
//
// The master is also the cluster's observability hub (internal/obs,
// docs/OBSERVABILITY.md): its HTTP server mounts the /debug surface —
// /debug/status, /debug/metrics (Prometheus text), /debug/pprof — next
// to the RPC and data endpoints, trace IDs issued by the Job driver
// travel to slaves inside assignments, and the per-attempt timing
// breakdown slaves report with task_done flows back through the
// scheduler into Job.Stats.
package master

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bucket"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/xmlrpc"
)

// DefaultBlacklistAfter is how many task failures a slave may report
// before the master stops assigning it work (while other slaves live).
const DefaultBlacklistAfter = 16

// Options configures a master.
type Options struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// PortFile, if set, receives "host:port\n" once listening — the
	// paper's mechanism for slaves to discover a master started by a
	// batch script.
	PortFile string
	// Dir is the master's bucket directory (local data, collect
	// staging). Empty means a fresh temp dir, removed on Close.
	Dir string
	// SharedDir, when non-empty, signals filesystem staging mode: the
	// master (and every slave) uses this directory and file:// URLs.
	SharedDir string
	// HeartbeatInterval is sent to slaves at signin (default 250ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a silent slave lives (default 8x
	// the interval).
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds task retries (default sched.DefaultMaxAttempts).
	MaxAttempts int
	// LongPoll bounds a get_task block (default 1s).
	LongPoll time.Duration
	// DisableAffinity turns off iteration affinity (ablation).
	DisableAffinity bool
	// TaskLease, when positive, requeues tasks that have been running
	// longer than this — recovery for assignments whose get_task
	// response was lost in flight. Completions are idempotent, so
	// requeuing a task that is secretly still running is safe; size the
	// lease well above the longest legitimate task. Zero disables.
	TaskLease time.Duration
	// BlacklistAfter stops assigning tasks to a slave after this many
	// reported task failures, as long as at least one other slave is
	// alive (repeat-offender quarantine). Zero selects
	// DefaultBlacklistAfter; negative disables.
	BlacklistAfter int
	// SpeculationFactor enables speculative straggler re-execution: a
	// task whose sole attempt has run longer than this factor times the
	// operation's median completed duration gets a duplicate attempt on
	// a different node, first completion wins (sched.SetSpeculation).
	// Zero disables.
	SpeculationFactor float64
	// SpeculationMinRuntime floors the speculation threshold (0 selects
	// the scheduler default; tests shrink it to drive fake-clock
	// speculation).
	SpeculationMinRuntime time.Duration
	// Clock drives heartbeat reaping, leases, and long-poll deadlines
	// (default: the wall clock; tests inject a fake).
	Clock clock.Clock
	// Obs is the observability runtime shared with the Job driver; the
	// master feeds it scheduler trace events and control-plane metrics
	// and serves it at /debug. Nil creates a private metrics-only
	// runtime so /debug/metrics always works.
	Obs *obs.Runtime
	// Compress makes the master's own buckets (job input staging)
	// flate-compressed at rest and on the wire to accepting slaves.
	Compress bool
	// Codec selects the compression codec for the master's block-framed
	// buckets ("" keeps the legacy framing; wins over Compress when
	// set). Unknown names fail New.
	Codec string
	// BlockEncoding selects the block encoding for the master's
	// buckets ("row", "columnar", "columnar-raw", "columnar-dict",
	// "columnar-delta"; "" = row). Unknown names fail New.
	BlockEncoding string
	// RowOnlyFetch makes the master's bucket fetches omit the
	// columnar-accept header, like a pre-columnar build (ablation and
	// mixed-version test hook).
	RowOnlyFetch bool
	// BlockSize overrides the record-block flush threshold in bytes
	// (0 = default).
	BlockSize int
	// MaxConcurrentJobs bounds the JobManager's admission: at most this
	// many managed jobs run at once, the rest queue in submission order
	// (default DefaultMaxConcurrentJobs).
	MaxConcurrentJobs int
	// JournalDir, when non-empty, makes the master durable: job
	// lifecycle events are logged there (internal/journal), and a master
	// started on a directory holding a previous master's journal recovers
	// its state — clients then reattach via Jobs().Resume and completed
	// tasks are answered from their journaled output manifests instead of
	// re-executing. Pair with SharedDir so the data those manifests name
	// survives the crash too.
	JournalDir string
	// JournalCheckpointEvery compacts the journal on this period (0
	// disables timer-driven compaction).
	JournalCheckpointEvery time.Duration
	// JournalCheckpointRecords compacts the journal after this many
	// records (0 = journal default, negative disables).
	JournalCheckpointRecords int
}

func (o *Options) fill() {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 8 * o.HeartbeatInterval
	}
	if o.LongPoll <= 0 {
		o.LongPoll = time.Second
	}
	if o.BlacklistAfter == 0 {
		o.BlacklistAfter = DefaultBlacklistAfter
	}
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	if o.Obs == nil {
		o.Obs = obs.New(o.Clock)
	}
	if o.MaxConcurrentJobs <= 0 {
		o.MaxConcurrentJobs = DefaultMaxConcurrentJobs
	}
}

// slaveInfo tracks one signed-in node. The master↔slave star
// generalized into a master↔node tree: a node is either a leaf slave
// or a sub-master fronting a whole worker group (internal/submaster),
// and the master schedules, leases, reaps, and drains both kinds
// identically — a sub-master just looks like one very wide slave.
type slaveInfo struct {
	id        string
	kind      string // rpcproto.NodeKindSlave or NodeKindSubmaster
	addr      string // advertised address ("" for anonymous slaves)
	slots     int64  // offered task slots (aggregated for sub-masters)
	tasksDone int64  // completions this node reported
	draining  bool   // next get_task answers shutdown and forgets it
	lastSeen  time.Time
}

// Master is the distributed executor.
type Master struct {
	opts    Options
	sched   *sched.Scheduler
	store   *bucket.Store
	ln      net.Listener
	httpSrv *http.Server
	addr    string
	ownsDir string
	manager *JobManager

	// recovered is the journal state replayed at startup (empty when no
	// journal or a fresh one); immutable after New.
	recovered *journal.State

	mu             sync.Mutex
	slaves         map[string]*slaveInfo
	nextSlave      int
	pendingDeletes map[string][]string // slaveID -> bucket names
	pendingGC      map[string][]int64  // slaveID -> completed job ids to reclaim
	jobStats       map[core.JobID]*JobTaskStats
	taskStats      TaskStats
	journal        *journal.Journal // nil once detached by Close/Crash
	closed         bool
	crashed        bool // Crash() was used; skip clean-shutdown signals

	reaperStop chan struct{}
	reaperDone chan struct{}
	specDone   chan struct{} // nil unless the speculation scanner runs
}

// JobTaskStats counts one job's completed work as reported over the
// control plane (rendered on /debug/status and by benchmarks).
type JobTaskStats struct {
	TasksDone    int64
	TasksFailed  int64
	ShuffleBytes int64 // input bytes the job's finished tasks consumed
}

// TaskStats counts control-plane events (benchmarks read these).
type TaskStats struct {
	TasksAssigned int64
	TasksDone     int64
	TasksFailed   int64
	TasksRequeued int64 // stale leases reclaimed (lost assignments)
	SlavesSeen    int64
	SlavesLost    int64
	Blacklisted   int64 // get_task requests parked by the blacklist
}

// New starts a master listening on opts.Addr.
func New(opts Options) (*Master, error) {
	opts.fill()
	m := &Master{
		opts:           opts,
		sched:          sched.NewWithClock(opts.MaxAttempts, opts.Clock),
		slaves:         map[string]*slaveInfo{},
		pendingDeletes: map[string][]string{},
		pendingGC:      map[string][]int64{},
		jobStats:       map[core.JobID]*JobTaskStats{},
		reaperStop:     make(chan struct{}),
		reaperDone:     make(chan struct{}),
	}
	m.sched.SetObserver(opts.Obs)
	m.sched.SetBlacklist(opts.BlacklistAfter, m.NumSlaves)
	if opts.SpeculationFactor > 0 {
		m.sched.SetSpeculation(sched.SpeculationConfig{
			SlownessFactor: opts.SpeculationFactor,
			MinRuntime:     opts.SpeculationMinRuntime,
		})
	}
	m.registerGauges(opts.Obs)
	m.manager = newJobManager(m, opts.MaxConcurrentJobs)
	m.recovered = journal.NewState()

	if opts.JournalDir != "" {
		jl, st, err := journal.Open(opts.JournalDir, journal.Options{
			Clock:             opts.Clock,
			Metrics:           opts.Obs.M(),
			CheckpointEvery:   opts.JournalCheckpointEvery,
			CheckpointRecords: opts.JournalCheckpointRecords,
		})
		if err != nil {
			return nil, err
		}
		m.journal = jl
		m.recovered = st
		if len(st.Jobs) > 0 {
			opts.Obs.M().Add(obs.MetricMasterRecoveries, 1)
		}
		// Seed the manager's id counter past every journaled job so
		// resumed and fresh submissions never collide, restore journaled
		// fair-share weights, and rebuild the control-plane stats the
		// journaled completions would have accumulated — a recovered
		// master reports the same JobStats a never-crashed one does.
		m.manager.nextID = core.JobID(st.MaxJobID)
		for id, jr := range st.Jobs {
			if jr.State != journal.JobRunning {
				continue
			}
			if jr.Weight > 0 {
				m.sched.SetJobWeight(core.JobID(id), jr.Weight)
			}
			m.jobStats[core.JobID(id)] = &JobTaskStats{
				TasksDone:    jr.TasksDone,
				ShuffleBytes: jr.ShuffleBytes,
			}
			m.taskStats.TasksDone += jr.TasksDone
		}
	}

	dir := opts.Dir
	if opts.SharedDir != "" {
		dir = opts.SharedDir
	} else if dir == "" {
		d, err := os.MkdirTemp("", "mrs-master-*")
		if err != nil {
			if m.journal != nil {
				m.journal.Close()
			}
			return nil, err
		}
		dir = d
		m.ownsDir = d
	}

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		if m.journal != nil {
			m.journal.Close()
		}
		return nil, fmt.Errorf("master: listen %s: %w", opts.Addr, err)
	}
	m.ln = ln
	m.addr = ln.Addr().String()

	baseURL := ""
	if opts.SharedDir == "" {
		baseURL = "http://" + m.addr + "/data"
	}
	store, err := bucket.NewFileStore(dir, baseURL)
	if err != nil {
		ln.Close()
		if m.journal != nil {
			m.journal.Close()
		}
		return nil, err
	}
	store.SetCompress(opts.Compress)
	if err := store.SetCodec(opts.Codec); err != nil {
		ln.Close()
		if m.journal != nil {
			m.journal.Close()
		}
		return nil, fmt.Errorf("master: %w", err)
	}
	if err := store.SetBlockEncoding(opts.BlockEncoding); err != nil {
		ln.Close()
		if m.journal != nil {
			m.journal.Close()
		}
		return nil, fmt.Errorf("master: %w", err)
	}
	store.SetRowOnlyFetch(opts.RowOnlyFetch)
	store.SetBlockSize(opts.BlockSize)
	store.SetMetrics(opts.Obs.M())
	m.store = store

	rpc := xmlrpc.NewServer()
	rpc.Register(rpcproto.MethodSignin, m.handleSignin)
	rpc.Register(rpcproto.MethodGetTask, m.handleGetTask)
	rpc.Register(rpcproto.MethodGetTasks, m.handleGetTasks)
	rpc.Register(rpcproto.MethodTaskDone, m.handleTaskDone)
	rpc.Register(rpcproto.MethodTaskFailed, m.handleTaskFailed)
	rpc.Register(rpcproto.MethodPing, m.handlePing)
	rpc.Register(rpcproto.MethodReportBatch, m.handleReportBatch)
	rpc.Register(rpcproto.MethodDrain, m.handleDrain)
	rpc.Register(rpcproto.MethodListNodes, m.handleListNodes)

	mux := http.NewServeMux()
	mux.Handle(xmlrpc.RPCPath, rpc)
	mux.HandleFunc("/data/", m.serveData)
	obs.RegisterDebug(mux, opts.Obs, m.statusPage)
	m.httpSrv = &http.Server{Handler: mux}
	go m.httpSrv.Serve(ln)
	go m.reaper()
	if opts.SpeculationFactor > 0 {
		// Straggler scans run on their own cadence, tied to the
		// speculation floor rather than the (much coarser) liveness
		// timeout: a stalled attempt should be duplicated within a
		// couple of MinRuntime periods.
		m.specDone = make(chan struct{})
		go m.speculator()
	}

	if opts.PortFile != "" {
		if err := os.WriteFile(opts.PortFile, []byte(m.addr+"\n"), 0o644); err != nil {
			m.Close()
			return nil, fmt.Errorf("master: writing port file: %w", err)
		}
	}
	return m, nil
}

// Addr returns the master's host:port.
func (m *Master) Addr() string { return m.addr }

// journalAppend logs an event if the master is durable; a detached
// journal (Close/Crash in progress) drops it.
func (m *Master) journalAppend(ev journal.Event) {
	m.mu.Lock()
	jl := m.journal
	m.mu.Unlock()
	if jl != nil {
		_ = jl.Append(ev)
	}
}

// Recovered returns a snapshot of the journal state the master
// replayed at startup (empty when not durable or nothing was
// journaled). Clients use it to find jobs to Resume.
func (m *Master) Recovered() *journal.State {
	return m.recovered.Clone()
}

// recoveredOutputs returns the journaled output manifests for a task,
// or nil when the task never completed (or the data they name no
// longer exists — then the task simply re-executes).
func (m *Master) recoveredOutputs(jobID core.JobID, dataset, taskIndex int) []journal.Manifest {
	jr := m.recovered.Job(int64(jobID))
	if jr == nil || jr.State != journal.JobRunning {
		return nil
	}
	outs := jr.TaskOutputs(dataset, taskIndex)
	if len(outs) == 0 {
		return nil
	}
	for _, o := range outs {
		if !m.manifestAlive(o) {
			return nil
		}
	}
	return outs
}

// manifestAlive reports whether a journaled bucket manifest still
// names reachable data. Files (shared-dir staging) and this master's
// own buckets are statted; slave-served HTTP buckets cannot be checked
// cheaply and are assumed dead — the previous fleet's data servers died
// with the previous master's run, so counting on them would trade a
// cheap re-execution for a task-long fetch stall.
func (m *Master) manifestAlive(o journal.Manifest) bool {
	switch {
	case strings.HasPrefix(o.URL, "file://"):
		_, err := os.Stat(strings.TrimPrefix(o.URL, "file://"))
		return err == nil
	default:
		return false
	}
}

// URL returns the master's RPC endpoint URL.
func (m *Master) URL() string { return "http://" + m.addr + xmlrpc.RPCPath }

// Stats returns a snapshot of control-plane counters.
func (m *Master) Stats() TaskStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.taskStats
}

// Scheduler exposes the scheduler (ablation benches).
func (m *Master) Scheduler() *sched.Scheduler { return m.sched }

// Jobs returns the master's job manager, which hosts concurrent
// core.Job executors behind a bounded admission queue.
func (m *Master) Jobs() *JobManager { return m.manager }

// JobStats returns a snapshot of one job's control-plane counters.
func (m *Master) JobStats(id core.JobID) JobTaskStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if js, ok := m.jobStats[id]; ok {
		return *js
	}
	return JobTaskStats{}
}

func (m *Master) jobStatsLocked(id core.JobID) *JobTaskStats {
	js, ok := m.jobStats[id]
	if !ok {
		js = &JobTaskStats{}
		m.jobStats[id] = js
	}
	return js
}

// registerGauges exposes control-plane state to the metrics surface.
// TaskStats counters are exported as gauges because they are snapshots
// of the same mutex-guarded struct benchmarks read.
func (m *Master) registerGauges(rt *obs.Runtime) {
	mm := rt.M()
	mm.SetGauge("mrs_slaves_live", func() int64 { return int64(m.NumSlaves()) })
	stat := func(pick func(TaskStats) int64) func() int64 {
		return func() int64 { return pick(m.Stats()) }
	}
	mm.SetGauge("mrs_master_tasks_assigned", stat(func(s TaskStats) int64 { return s.TasksAssigned }))
	mm.SetGauge("mrs_master_tasks_done", stat(func(s TaskStats) int64 { return s.TasksDone }))
	mm.SetGauge("mrs_master_tasks_failed", stat(func(s TaskStats) int64 { return s.TasksFailed }))
	mm.SetGauge("mrs_master_tasks_requeued", stat(func(s TaskStats) int64 { return s.TasksRequeued }))
	mm.SetGauge("mrs_master_blacklisted", stat(func(s TaskStats) int64 { return s.Blacklisted }))
	mm.SetGauge("mrs_slaves_seen", stat(func(s TaskStats) int64 { return s.SlavesSeen }))
	mm.SetGauge("mrs_slaves_lost", stat(func(s TaskStats) int64 { return s.SlavesLost }))
}

// statusPage renders the master half of /debug/status: the aggregate
// fields single-job runs have always had, plus — when the JobManager
// has hosted any jobs — a per-job table of state, task counts, and
// shuffled bytes.
func (m *Master) statusPage() string {
	st := m.Stats()
	out := fmt.Sprintf(
		"mrs master %s\nslaves live: %d (seen %d, lost %d)\nsched: %d pending, %d running\ntasks: %d assigned, %d done, %d failed, %d requeued, %d blacklisted polls\n",
		m.addr, m.NumSlaves(), st.SlavesSeen, st.SlavesLost,
		m.sched.Pending(), m.sched.Running(),
		st.TasksAssigned, st.TasksDone, st.TasksFailed, st.TasksRequeued, st.Blacklisted)
	if nodes := m.Nodes(); len(nodes) > 0 {
		out += "nodes:\n"
		for _, n := range nodes {
			extra := ""
			if n.Draining {
				extra = " draining"
			}
			out += fmt.Sprintf("  %s (%s) addr=%s slots=%d done=%d%s\n",
				n.ID, n.Kind, n.Addr, n.Slots, n.TasksDone, extra)
		}
	}
	jobs := m.manager.List()
	if len(jobs) == 0 {
		return out
	}
	out += "jobs:\n"
	for _, ji := range jobs {
		pending, running := m.sched.JobCounts(ji.ID)
		js := m.JobStats(ji.ID)
		out += fmt.Sprintf("  job %d %q: %s — %d pending, %d running, %d done, %d failed, %d bytes shuffled\n",
			ji.ID, ji.Name, ji.State, pending, running, js.TasksDone, js.TasksFailed, js.ShuffleBytes)
	}
	return out
}

// serveData serves bucket files to slaves and to Collect.
func (m *Master) serveData(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/data/")
	path, err := m.store.ServeName(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bucket.ServeBucket(w, r, path)
}

// ---------------------------------------------------------------------------
// RPC handlers

func (m *Master) handleSignin(args []any) (any, error) {
	node := rpcproto.DecodeSigninArgs(args)
	if node.Kind == "" {
		node.Kind = rpcproto.NodeKindSlave
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("master: closed")
	}
	m.nextSlave++
	prefix := "slave"
	if node.Kind == rpcproto.NodeKindSubmaster {
		prefix = "sm"
	}
	id := fmt.Sprintf("%s-%d", prefix, m.nextSlave)
	m.slaves[id] = &slaveInfo{
		id:       id,
		kind:     node.Kind,
		addr:     node.Addr,
		slots:    node.Slots,
		lastSeen: m.opts.Clock.Now(),
	}
	m.taskStats.SlavesSeen++
	return rpcproto.SigninReply{
		SlaveID:         id,
		HeartbeatMillis: m.opts.HeartbeatInterval.Milliseconds(),
	}.Encode(), nil
}

// touch refreshes a slave's liveness; returns false for unknown slaves
// (e.g. ones already declared dead).
func (m *Master) touch(slaveID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.slaves[slaveID]
	if !ok {
		return false
	}
	info.lastSeen = m.opts.Clock.Now()
	return true
}

// unknownSlaveFault is the typed fault slaves key their re-signin on.
func unknownSlaveFault(slaveID string) *xmlrpc.Fault {
	return &xmlrpc.Fault{
		Code:    rpcproto.FaultUnknownSlave,
		Message: fmt.Sprintf("master: unknown slave %s (declared dead?)", slaveID),
	}
}

func slaveIDArg(args []any) (string, error) {
	if len(args) < 1 {
		return "", fmt.Errorf("master: missing slave id")
	}
	id, ok := args[0].(string)
	if !ok || id == "" {
		return "", fmt.Errorf("master: bad slave id %v", args[0])
	}
	return id, nil
}

func (m *Master) handlePing(args []any) (any, error) {
	id, err := slaveIDArg(args)
	if err != nil {
		return nil, err
	}
	if !m.touch(id) {
		return nil, unknownSlaveFault(id)
	}
	return true, nil
}

func (m *Master) handleGetTask(args []any) (any, error) {
	a, err := m.assignOne(args)
	if err != nil {
		return nil, err
	}
	return encodeAssignment(a)
}

// handleGetTasks is the batched fetch of the sub-master tier: one
// get_task long poll for the first assignment, then a non-blocking
// drain of up to max-1 more ready tasks, all in one round trip. A
// sub-master refilling a whole shard's worth of idle slots pays one
// RPC instead of one per task; the flat get_task protocol is
// unchanged for leaves. args: (node, max).
func (m *Master) handleGetTasks(args []any) (any, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("master: get_tasks wants (node, max)")
	}
	maxN, _ := args[1].(int64)
	if maxN < 1 {
		maxN = 1
	}
	first, err := m.assignOne(args[:1])
	if err != nil {
		return nil, err
	}
	as := []rpcproto.Assignment{first}
	if first.Status == rpcproto.StatusTask {
		id, _ := args[0].(string)
		for int64(len(as)) < maxN {
			task, attempt, err := m.sched.RequestAttempt(id, 0)
			if err != nil || task == nil {
				break
			}
			m.mu.Lock()
			m.taskStats.TasksAssigned++
			m.mu.Unlock()
			as = append(as, rpcproto.Assignment{
				Status:  rpcproto.StatusTask,
				TaskID:  int64(task.ID),
				Attempt: int64(attempt),
				Spec:    task.Spec,
			})
		}
	}
	return rpcproto.EncodeAssignments(as)
}

// assignOne is the get_task body: liveness bookkeeping, piggybacked
// broadcasts, then one long poll on the scheduler.
func (m *Master) assignOne(args []any) (rpcproto.Assignment, error) {
	id, err := slaveIDArg(args)
	if err != nil {
		return rpcproto.Assignment{}, err
	}
	if !m.touch(id) {
		return rpcproto.Assignment{}, unknownSlaveFault(id)
	}
	// Collect piggybacked deletes and job-GC broadcasts.
	m.mu.Lock()
	deletes := m.pendingDeletes[id]
	delete(m.pendingDeletes, id)
	gcJobs := m.pendingGC[id]
	delete(m.pendingGC, id)
	closed, crashed := m.closed, m.crashed
	draining := false
	if info := m.slaves[id]; info != nil && info.draining {
		// Drain completion: the node's leases were already requeued by
		// Drain; this poll carries the shutdown answer and the node is
		// forgotten. Late task reports from it still resolve through
		// the scheduler's stale-delivery tolerance.
		draining = true
		delete(m.slaves, id)
		delete(m.pendingDeletes, id)
		delete(m.pendingGC, id)
	}
	m.mu.Unlock()
	if draining {
		return rpcproto.Assignment{Status: rpcproto.StatusShutdown, Deletes: deletes, GCJobs: gcJobs}, nil
	}
	if closed {
		if crashed {
			// A crashing master must not tell the fleet to shut down —
			// a plain error makes slaves back off and retry until the
			// restarted master answers.
			return rpcproto.Assignment{}, fmt.Errorf("master: unavailable (crashing)")
		}
		return rpcproto.Assignment{Status: rpcproto.StatusShutdown, Deletes: deletes, GCJobs: gcJobs}, nil
	}
	if m.blacklisted(id) {
		// Park the repeat offender for a long-poll period so it paces
		// itself like an idle slave, then send it away empty-handed.
		time.Sleep(m.opts.LongPoll)
		m.touch(id)
		m.mu.Lock()
		m.taskStats.Blacklisted++
		m.mu.Unlock()
		return rpcproto.Assignment{Status: rpcproto.StatusIdle, Deletes: deletes, GCJobs: gcJobs}, nil
	}
	task, attempt, err := m.sched.RequestAttempt(id, m.opts.LongPoll)
	if err == sched.ErrClosed {
		m.mu.Lock()
		crashed = m.crashed
		m.mu.Unlock()
		if crashed {
			return rpcproto.Assignment{}, fmt.Errorf("master: unavailable (crashing)")
		}
		return rpcproto.Assignment{Status: rpcproto.StatusShutdown, Deletes: deletes, GCJobs: gcJobs}, nil
	}
	if err != nil {
		return rpcproto.Assignment{}, err
	}
	m.touch(id) // the long poll may have taken a while
	if task == nil {
		return rpcproto.Assignment{Status: rpcproto.StatusIdle, Deletes: deletes, GCJobs: gcJobs}, nil
	}
	m.mu.Lock()
	m.taskStats.TasksAssigned++
	m.mu.Unlock()
	return rpcproto.Assignment{
		Status:  rpcproto.StatusTask,
		TaskID:  int64(task.ID),
		Attempt: int64(attempt),
		Spec:    task.Spec,
		Deletes: deletes,
		GCJobs:  gcJobs,
	}, nil
}

// blacklisted reports whether the slave has failed enough tasks to be
// parked rather than long-polled. Quarantine is per job inside the
// scheduler (a slave blacklisted for one job still serves others);
// only a slave blacklisted for *every* current job is parked here. The
// last live slave is never blacklisted — a degraded worker beats a
// deadlocked job.
func (m *Master) blacklisted(id string) bool {
	return m.sched.BlacklistedEverywhere(id)
}

func encodeAssignment(a rpcproto.Assignment) (any, error) {
	enc, err := a.Encode()
	if err != nil {
		return nil, err
	}
	return enc, nil
}

func (m *Master) handleTaskDone(args []any) (any, error) {
	if len(args) < 4 {
		return nil, fmt.Errorf("master: task_done wants (slave, job, task, outputs[, timing])")
	}
	id, err := slaveIDArg(args)
	if err != nil {
		return nil, err
	}
	jobID, ok := args[1].(int64)
	if !ok {
		return nil, fmt.Errorf("master: bad job id %v", args[1])
	}
	taskID, ok := args[2].(int64)
	if !ok {
		return nil, fmt.Errorf("master: bad task id %v", args[2])
	}
	outputs, err := rpcproto.DecodeDescriptors(args[3])
	if err != nil {
		return nil, err
	}
	result := &core.TaskResult{Outputs: outputs}
	if len(args) >= 5 {
		// Optional measured cost breakdown from the executing slave.
		result.Timing = rpcproto.DecodeTiming(args[4])
	}
	known := m.touch(id)
	// Accept the result even from a slave this master doesn't know (it
	// may have outlived a master restart); the scheduler sorts accepted
	// completions from duplicate or stale ones.
	if err := m.applyTaskDone(id, jobID, taskID, result); err != nil {
		return nil, err
	}
	if !known {
		// Processed anyway (above), but tell the slave to re-sign-in so
		// its leases reconcile against this master's state.
		return nil, unknownSlaveFault(id)
	}
	return true, nil
}

// applyTaskDone feeds one completion into the scheduler and, if
// accepted, into stats, metrics, and the journal. Shared between
// task_done (one report per RPC) and report_batch (a sub-master's
// aggregated reports).
func (m *Master) applyTaskDone(id string, jobID, taskID int64, result *core.TaskResult) error {
	spec, err := m.sched.CompleteTask(sched.TaskID(taskID), id, result)
	if err != nil {
		return err
	}
	if spec != nil {
		m.mu.Lock()
		m.taskStats.TasksDone++
		if info := m.slaves[id]; info != nil {
			info.tasksDone++
		}
		js := m.jobStatsLocked(core.JobID(jobID))
		js.TasksDone++
		js.ShuffleBytes += result.Timing.InBytes
		m.mu.Unlock()
		mm := m.opts.Obs.M()
		mm.Add(obs.JobSeries("mrs_job_tasks_done_total", jobID), 1)
		mm.Add(obs.JobSeries("mrs_job_shuffle_bytes_total", jobID), result.Timing.InBytes)
		if spec.Job != 0 {
			m.journalAppend(journal.Event{
				Kind:    journal.EvTaskDone,
				Job:     int64(spec.Job),
				Dataset: spec.Op.Dataset,
				Task:    spec.TaskIndex,
				Outputs: journal.FromDescriptors(result.Outputs),
				InBytes: result.Timing.InBytes,
				Node:    id,
			})
		}
	}
	if m.opts.DisableAffinity {
		m.sched.ClearAffinity()
	}
	return nil
}

func (m *Master) handleTaskFailed(args []any) (any, error) {
	if len(args) < 4 {
		return nil, fmt.Errorf("master: task_failed wants (slave, job, task, message)")
	}
	id, err := slaveIDArg(args)
	if err != nil {
		return nil, err
	}
	jobID, ok := args[1].(int64)
	if !ok {
		return nil, fmt.Errorf("master: bad job id %v", args[1])
	}
	taskID, ok := args[2].(int64)
	if !ok {
		return nil, fmt.Errorf("master: bad task id %v", args[2])
	}
	msg, _ := args[3].(string)
	known := m.touch(id)
	if err := m.applyTaskFailed(id, jobID, taskID, msg); err != nil {
		return nil, err
	}
	if !known {
		return nil, unknownSlaveFault(id)
	}
	return true, nil
}

// applyTaskFailed is applyTaskDone's failure-path twin.
func (m *Master) applyTaskFailed(id string, jobID, taskID int64, msg string) error {
	m.mu.Lock()
	m.taskStats.TasksFailed++
	m.jobStatsLocked(core.JobID(jobID)).TasksFailed++
	m.mu.Unlock()
	m.opts.Obs.M().Add(obs.JobSeries("mrs_job_tasks_failed_total", jobID), 1)
	return m.sched.Fail(sched.TaskID(taskID), id, msg)
}

// handleReportBatch accepts a sub-master's aggregated task outcomes:
// (node, reports). Each report names its own job — a batch may span
// jobs. Every report in the batch is applied even if one errors — a
// batch is a transport optimization, not a transaction — and like
// task_done, reports from an unknown node are processed before the
// re-sign-in fault is returned.
func (m *Master) handleReportBatch(args []any) (any, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("master: report_batch wants (node, reports)")
	}
	id, err := slaveIDArg(args)
	if err != nil {
		return nil, err
	}
	reports, err := rpcproto.DecodeReports(args[1])
	if err != nil {
		return nil, err
	}
	known := m.touch(id)
	m.opts.Obs.M().Add(obs.MetricMasterBatchReports, 1)
	var firstErr error
	for _, r := range reports {
		var err error
		if r.Done {
			err = m.applyTaskDone(id, r.Job, r.TaskID, &core.TaskResult{Outputs: r.Outputs, Timing: r.Timing})
		} else {
			err = m.applyTaskFailed(id, r.Job, r.TaskID, r.Err)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if !known {
		return nil, unknownSlaveFault(id)
	}
	return true, nil
}

// handleDrain takes a node out of rotation by id or advertised
// address: its leases requeue immediately and its next get_task
// answers shutdown. args: (target).
func (m *Master) handleDrain(args []any) (any, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("master: drain wants (node-id-or-addr)")
	}
	target, _ := args[0].(string)
	if target == "" {
		return nil, fmt.Errorf("master: bad drain target %v", args[0])
	}
	if !m.Drain(target) {
		return nil, fmt.Errorf("master: drain: no node %q", target)
	}
	return true, nil
}

// Drain marks the node (by id or advertised address) draining and
// returns its leases to the scheduler. Reports whether a node matched.
func (m *Master) Drain(target string) bool {
	m.mu.Lock()
	var info *slaveInfo
	if byID := m.slaves[target]; byID != nil {
		info = byID
	} else {
		for _, si := range m.slaves {
			if si.addr != "" && si.addr == target {
				info = si
				break
			}
		}
	}
	if info == nil {
		m.mu.Unlock()
		return false
	}
	info.draining = true
	id := info.id
	m.mu.Unlock()
	m.opts.Obs.M().Add(obs.MetricMasterDrains, 1)
	m.sched.Drain(id)
	return true
}

func (m *Master) handleListNodes(args []any) (any, error) {
	return rpcproto.EncodeNodeInfos(m.Nodes()), nil
}

// Nodes returns a snapshot of every signed-in node, sorted by id
// (diagnostics, the status page, and the list_nodes RPC).
func (m *Master) Nodes() []rpcproto.NodeInfo {
	m.mu.Lock()
	out := make([]rpcproto.NodeInfo, 0, len(m.slaves))
	for _, si := range m.slaves {
		kind := si.kind
		if kind == "" {
			kind = rpcproto.NodeKindSlave
		}
		out = append(out, rpcproto.NodeInfo{
			ID:        si.id,
			Kind:      kind,
			Addr:      si.addr,
			Slots:     si.slots,
			TasksDone: si.tasksDone,
			Draining:  si.draining,
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ---------------------------------------------------------------------------
// Liveness

func (m *Master) reaper() {
	defer close(m.reaperDone)
	tick := m.opts.Clock.NewTicker(m.opts.HeartbeatTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-m.reaperStop:
			return
		case <-tick.Chan():
			cutoff := m.opts.Clock.Now().Add(-m.opts.HeartbeatTimeout)
			var dead []string
			m.mu.Lock()
			for id, info := range m.slaves {
				if info.lastSeen.Before(cutoff) {
					dead = append(dead, id)
					delete(m.slaves, id)
					delete(m.pendingDeletes, id)
					m.taskStats.SlavesLost++
				}
			}
			m.mu.Unlock()
			for _, id := range dead {
				m.sched.SlaveDead(id)
			}
			if m.opts.TaskLease > 0 {
				if n := m.sched.RequeueStale(m.opts.TaskLease); n > 0 {
					m.mu.Lock()
					m.taskStats.TasksRequeued += int64(n)
					m.mu.Unlock()
				}
			}
		}
	}
}

// speculator periodically scans running attempts for stragglers and
// queues duplicate attempts (sched.Speculate); started only when
// Options.SpeculationFactor enables speculation.
func (m *Master) speculator() {
	defer close(m.specDone)
	interval := m.opts.SpeculationMinRuntime / 2
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := m.opts.Clock.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.reaperStop:
			return
		case <-tick.Chan():
			m.sched.Speculate()
		}
	}
}

// NumSlaves returns the count of live slaves.
func (m *Master) NumSlaves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.slaves)
}

// WaitForSlaves blocks until at least n slaves are signed in.
func (m *Master) WaitForSlaves(ctx context.Context, n int) error {
	for {
		if m.NumSlaves() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("master: waiting for %d slaves: %w", n, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// ---------------------------------------------------------------------------
// core.Executor

// Store implements core.Executor.
func (m *Master) Store() *bucket.Store { return m.store }

// Submit implements core.Executor: the task enters the scheduler's
// pending set, where tasks from any number of concurrent operations
// interleave, and slaves pull it via get_task. The callback fires when
// the task succeeds, exhausts its retry budget, or the master shuts
// down; the scheduler guarantees it never fires synchronously from
// inside Submit and never while internal locks are held.
func (m *Master) Submit(spec *core.TaskSpec, done func(*core.TaskResult, error)) {
	// Recovery short-circuit: a resumed job re-drives its whole program,
	// but tasks whose completions the journal replayed are answered from
	// their journaled output manifests — no slave ever sees them again.
	// Dataset ids are queue positions and task indexes are stable, so a
	// deterministic driver resubmits each task under the same key.
	if spec.Job != 0 {
		if outs := m.recoveredOutputs(spec.Job, spec.Op.Dataset, spec.TaskIndex); outs != nil {
			m.opts.Obs.M().Add(obs.MetricRecoveredTasks, 1)
			res := &core.TaskResult{Dataset: spec.Op.Dataset, TaskIndex: spec.TaskIndex}
			for _, o := range outs {
				res.Outputs = append(res.Outputs, o.Descriptor())
			}
			go done(res, nil)
			return
		}
	}
	if _, err := m.sched.Submit(spec, sched.Callback(done)); err != nil {
		// Scheduler already closed; deliver the refusal asynchronously
		// to honor the Executor contract.
		go done(nil, err)
	}
}

// SetJobWeight adjusts a managed job's fair-share weight, journaling
// the change so a recovered master restores it.
func (m *Master) SetJobWeight(id core.JobID, weight int) {
	m.sched.SetJobWeight(id, weight)
	if id != 0 {
		m.journalAppend(journal.Event{Kind: journal.EvJobWeight, Job: int64(id), Weight: weight})
	}
}

// Free implements core.Executor. Buckets owned by the master (its own
// store, or the shared directory) are removed directly; buckets served
// by slaves are queued as piggybacked delete commands.
func (m *Master) Free(mat *core.Materialized) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, split := range mat.Splits {
		for _, d := range split {
			if d.Name == "" {
				continue
			}
			switch {
			case strings.HasPrefix(d.URL, "file://"), strings.HasPrefix(d.URL, "http://"+m.addr+"/"):
				_ = m.store.Remove(d.Name)
			default:
				// Ask every live slave to delete; removal is
				// idempotent, so non-owners simply no-op.
				for id := range m.slaves {
					m.pendingDeletes[id] = append(m.pendingDeletes[id], d.Name)
				}
			}
		}
	}
}

// jobComplete reclaims a finished managed job's runtime state: the
// master's own copy of the job's buckets is removed immediately, every
// live slave gets the job id queued as a GC broadcast (piggybacked on
// its next get_task, like Free's per-bucket deletes), and the
// scheduler drops the job's queues/affinities/blacklist. Slaves that
// sign in later never held the job's data, so queueing only to the
// current fleet is complete.
func (m *Master) jobComplete(id core.JobID) {
	m.mu.Lock()
	if m.crashed {
		// A crashing master must not reclaim anything: the journaled
		// manifests name exactly these buckets, and recovery needs them.
		m.mu.Unlock()
		return
	}
	for sid := range m.slaves {
		m.pendingGC[sid] = append(m.pendingGC[sid], int64(id))
	}
	m.mu.Unlock()
	_, _ = m.store.RemoveJob(int64(id))
	m.sched.JobDone(id)
}

// Close implements core.Executor: it tells slaves to shut down (via
// get_task) and stops serving.
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	jl := m.journal
	m.journal = nil
	m.mu.Unlock()

	// The journal must be checkpointed, fsynced, and unlocked BEFORE the
	// scheduler closes: closing the scheduler fails the running jobs and
	// releases the admission queue, and anything that happens after that
	// must not race a half-flushed journal (interrupted jobs stay
	// "running" in the journal — that is what makes them resumable).
	if jl != nil {
		_ = jl.Close()
	}

	m.sched.Close()
	close(m.reaperStop)
	<-m.reaperDone
	if m.specDone != nil {
		<-m.specDone
	}

	// Closing the scheduler wakes every long-polled get_task, whose
	// handlers then return shutdown. A short grace period lets slaves
	// that were between polls get one more request in before the HTTP
	// server stops accepting connections.
	time.Sleep(100 * time.Millisecond)
	// Drop our own pooled fetch connections (Collect reads from slave
	// data servers) so their shutdowns quiesce too.
	m.store.CloseIdle()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := m.httpSrv.Shutdown(ctx)
	if err != nil {
		m.httpSrv.Close()
	}
	if m.ownsDir != "" {
		os.RemoveAll(m.ownsDir)
	}
	return nil
}

// Crash stops the master the way SIGKILL would, for crash-recovery
// tests: the journal is abandoned without a final checkpoint or fsync,
// the HTTP server is torn down abruptly, and — unlike Close — no
// shutdown signal ever reaches the fleet (slaves see RPC errors, back
// off, and retry until a restarted master answers), no bucket data is
// reclaimed, and the master's own directory is left on disk.
func (m *Master) Crash() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.crashed = true
	jl := m.journal
	m.journal = nil
	m.mu.Unlock()

	if jl != nil {
		jl.Abandon()
	}
	// Abrupt: in-flight RPCs die mid-connection, exactly as on a kill.
	m.httpSrv.Close()
	m.sched.Close()
	close(m.reaperStop)
	<-m.reaperDone
	if m.specDone != nil {
		<-m.specDone
	}
	m.store.CloseIdle()
	return nil
}
