package master

// Deterministic crash-recovery tests: no real slaves, no real time. The
// test is the fleet — it pulls tasks straight from the scheduler,
// executes them with core.ExecTask against the shared-dir store, and
// reports completions through the same handleTaskDone path slaves use.
// The fake clock freezes heartbeats and leases, so exactly the
// completions the test delivers are the completions that happen.

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/kvio"
	"repro/internal/obs"
	"repro/internal/rpcproto"
	"repro/internal/sched"
)

var recoveryLines = []string{
	"the quick brown fox",
	"the lazy dog",
	"the fox jumps over the lazy dog",
	"quick quick quick",
	"over the lazy fox",
	"dog and fox and dog",
}

func recoveryRegistry() *core.Registry {
	reg := core.NewRegistry()
	reg.RegisterMap("split", func(key, value []byte, emit kvio.Emitter) error {
		for _, w := range strings.Fields(string(value)) {
			if err := emit.Emit([]byte(w), codec.EncodeVarint(1)); err != nil {
				return err
			}
		}
		return nil
	})
	reg.RegisterReduce("sum", func(key []byte, values [][]byte, emit kvio.Emitter) error {
		var total int64
		for _, v := range values {
			n, err := codec.DecodeVarint(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit.Emit(key, codec.EncodeVarint(total))
	})
	return reg
}

// recoveryWordCount is the deterministic driver under test: 3 map
// tasks, then 4 reduce tasks (barriered, so the task sequence is
// stable), collecting inside the run as managed jobs must.
func recoveryWordCount(out *[]kvio.Pair) func(*core.Job) error {
	return func(job *core.Job) error {
		pairs := make([]kvio.Pair, len(recoveryLines))
		for i, l := range recoveryLines {
			pairs[i] = kvio.Pair{Key: codec.EncodeVarint(int64(i)), Value: []byte(l)}
		}
		src, err := job.LocalData(pairs, core.OpOpts{Splits: 3, Partition: "roundrobin"})
		if err != nil {
			return err
		}
		res, err := job.MapReduce(src, "split", "sum",
			core.OpOpts{Splits: 4}, core.OpOpts{Splits: 2})
		if err != nil {
			return err
		}
		got, err := res.Collect()
		if err != nil {
			return err
		}
		*out = got
		return nil
	}
}

const recoveryTotalTasks = 7 // 3 map + 4 reduce

// recoveryMaster starts a shared-dir, journaled, fake-clock master.
func recoveryMaster(t *testing.T, sharedDir, journalDir string, rt *obs.Runtime) *Master {
	t.Helper()
	m, err := New(Options{
		SharedDir:  sharedDir,
		JournalDir: journalDir,
		Clock:      clock.NewFake(time.Unix(0, 0)),
		Obs:        rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func recoveryEnv(t *testing.T, m *Master) (*core.TaskEnv, string) {
	t.Helper()
	raw, err := m.handleSignin(nil)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := rpcproto.DecodeSigninReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	return &core.TaskEnv{
		Store:   m.Store(),
		Reg:     recoveryRegistry(),
		TempDir: t.TempDir(),
	}, reply.SlaveID
}

// pump executes up to limit tasks, stopping early once stop() is true
// (checked between tasks). Returns how many tasks it completed.
func pump(t *testing.T, m *Master, env *core.TaskEnv, slaveID string, limit int, stop func() bool) int {
	t.Helper()
	n := 0
	deadline := time.Now().Add(30 * time.Second)
	for n < limit {
		if stop != nil && stop() {
			return n
		}
		if time.Now().After(deadline) {
			t.Fatalf("pump stalled after %d tasks", n)
		}
		task, err := m.sched.Request(slaveID, 0)
		if err == sched.ErrClosed {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		if task == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		res, err := core.ExecTask(env, task.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.handleTaskDone([]any{
			slaveID, int64(task.Spec.Job), int64(task.ID),
			rpcproto.EncodeDescriptors(res.Outputs), rpcproto.EncodeTiming(res.Timing),
		}); err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

func finished(mj *ManagedJob) func() bool {
	return func() bool {
		st := mj.State()
		return st == JobDone || st == JobFailed
	}
}

// runToCompletion drives a managed job to the end and returns how many
// tasks the pump actually executed for it.
func runToCompletion(t *testing.T, m *Master, env *core.TaskEnv, slaveID string, mj *ManagedJob) int {
	t.Helper()
	n := pump(t, m, env, slaveID, 1<<30, finished(mj))
	if err := mj.Wait(); err != nil {
		t.Fatalf("job: %v", err)
	}
	return n
}

// A master crashed after K completions recovers from its journal,
// answers the K journaled tasks without re-dispatching them, and
// finishes with output and JobStats identical to a never-crashed
// master's.
func TestRecoveredManagerMatchesUncrashed(t *testing.T) {
	for _, k := range []int{2, 5} { // mid-map and mid-reduce crashes
		t.Run(map[int]string{2: "midMap", 5: "midReduce"}[k], func(t *testing.T) {
			// Control: never crashes.
			ctrl := recoveryMaster(t, t.TempDir(), t.TempDir(), nil)
			envC, sidC := recoveryEnv(t, ctrl)
			var wantPairs []kvio.Pair
			mjC, err := ctrl.Jobs().Submit("wc", core.JobOptions{}, recoveryWordCount(&wantPairs))
			if err != nil {
				t.Fatal(err)
			}
			runToCompletion(t, ctrl, envC, sidC, mjC)
			wantStats := ctrl.JobStats(mjC.ID())

			// Crash run: shared dir and journal survive the master.
			sharedDir, journalDir := t.TempDir(), t.TempDir()
			mA := recoveryMaster(t, sharedDir, journalDir, nil)
			envA, sidA := recoveryEnv(t, mA)
			var lostPairs []kvio.Pair
			mjA, err := mA.Jobs().Submit("wc", core.JobOptions{}, recoveryWordCount(&lostPairs))
			if err != nil {
				t.Fatal(err)
			}
			if got := pump(t, mA, envA, sidA, k, nil); got != k {
				t.Fatalf("pumped %d tasks before crash, want %d", got, k)
			}
			if err := mA.Crash(); err != nil {
				t.Fatal(err)
			}
			if err := mjA.Wait(); err == nil {
				t.Fatal("job survived the crash without a journal replay")
			}

			// Restart on the same journal and resume.
			rtB := obs.New(nil)
			mB := recoveryMaster(t, sharedDir, journalDir, rtB)
			if got := rtB.M().Get(obs.MetricMasterRecoveries); got != 1 {
				t.Fatalf("recoveries metric = %d", got)
			}
			// The replayed stats match what the journal witnessed.
			if got := mB.JobStats(mjA.ID()); got.TasksDone != int64(k) {
				t.Fatalf("recovered JobStats.TasksDone = %d, want %d", got.TasksDone, k)
			}
			var gotPairs []kvio.Pair
			mjB, err := mB.Jobs().Resume(mjA.ID(), "wc", core.JobOptions{}, recoveryWordCount(&gotPairs))
			if err != nil {
				t.Fatal(err)
			}
			if mjB.ID() != mjA.ID() {
				t.Fatalf("resumed under id %d, journaled id %d", mjB.ID(), mjA.ID())
			}
			envB, sidB := recoveryEnv(t, mB)
			executedB := runToCompletion(t, mB, envB, sidB, mjB)

			if !reflect.DeepEqual(wantPairs, gotPairs) {
				t.Fatalf("recovered output differs from uninterrupted run:\nwant %v\ngot  %v", wantPairs, gotPairs)
			}
			if got := rtB.M().Get(obs.MetricRecoveredTasks); got != int64(k) {
				t.Fatalf("recovered-tasks metric = %d, want %d", got, k)
			}
			// Journaled-complete tasks were never re-dispatched: the
			// restarted master handed out exactly the remainder.
			if executedB != recoveryTotalTasks-k {
				t.Fatalf("restarted master dispatched %d tasks, want %d", executedB, recoveryTotalTasks-k)
			}
			if got, want := mB.JobStats(mjB.ID()), wantStats; got.TasksDone != want.TasksDone || got.ShuffleBytes != want.ShuffleBytes {
				t.Fatalf("recovered JobStats = %+v, uncrashed = %+v", got, want)
			}
			// The finished job is journaled done: a further restart has
			// nothing to resume.
			if err := mB.Close(); err != nil {
				t.Fatal(err)
			}
			st, err := journal.Inspect(journalDir)
			if err != nil {
				t.Fatal(err)
			}
			if jr := st.Job(int64(mjA.ID())); jr == nil || jr.State != journal.JobDone {
				t.Fatalf("journal after completion: %+v", st.Job(int64(mjA.ID())))
			}
		})
	}
}

// A second crash — during recovery, before the resumed job finishes —
// is safe: replay is idempotent and the third master completes the job.
func TestSecondCrashDuringRecoveryIsSafe(t *testing.T) {
	sharedDir, journalDir := t.TempDir(), t.TempDir()

	mA := recoveryMaster(t, sharedDir, journalDir, nil)
	envA, sidA := recoveryEnv(t, mA)
	var aPairs []kvio.Pair
	mjA, err := mA.Jobs().Submit("wc", core.JobOptions{}, recoveryWordCount(&aPairs))
	if err != nil {
		t.Fatal(err)
	}
	pump(t, mA, envA, sidA, 2, nil)
	mA.Crash()
	mjA.Wait()

	// Second master: resume, make some progress, crash again.
	mB := recoveryMaster(t, sharedDir, journalDir, nil)
	var bPairs []kvio.Pair
	mjB, err := mB.Jobs().Resume(mjA.ID(), "wc", core.JobOptions{}, recoveryWordCount(&bPairs))
	if err != nil {
		t.Fatal(err)
	}
	envB, sidB := recoveryEnv(t, mB)
	if got := pump(t, mB, envB, sidB, 2, finished(mjB)); got != 2 {
		t.Fatalf("second master pumped %d tasks", got)
	}
	mB.Crash()
	mjB.Wait()

	// Third master: 4 completions journaled across two crashed runs.
	rtC := obs.New(nil)
	mC := recoveryMaster(t, sharedDir, journalDir, rtC)
	if got := mC.JobStats(mjA.ID()).TasksDone; got != 4 {
		t.Fatalf("third master recovered %d completions, want 4", got)
	}
	var cPairs []kvio.Pair
	mjC, err := mC.Jobs().Resume(mjA.ID(), "wc", core.JobOptions{}, recoveryWordCount(&cPairs))
	if err != nil {
		t.Fatal(err)
	}
	envC, sidC := recoveryEnv(t, mC)
	runToCompletion(t, mC, envC, sidC, mjC)

	// Same answer a control master computes from scratch.
	ctrl := recoveryMaster(t, t.TempDir(), t.TempDir(), nil)
	envCt, sidCt := recoveryEnv(t, ctrl)
	var wantPairs []kvio.Pair
	mjCt, err := ctrl.Jobs().Submit("wc", core.JobOptions{}, recoveryWordCount(&wantPairs))
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, ctrl, envCt, sidCt, mjCt)
	if !reflect.DeepEqual(wantPairs, cPairs) {
		t.Fatalf("twice-crashed output differs:\nwant %v\ngot  %v", wantPairs, cPairs)
	}
	if got := rtC.M().Get(obs.MetricRecoveredTasks); got != 4 {
		t.Fatalf("recovered-tasks metric = %d, want 4", got)
	}
}

// Resume rejects jobs the journal cannot vouch for.
func TestResumeValidation(t *testing.T) {
	sharedDir, journalDir := t.TempDir(), t.TempDir()
	mA := recoveryMaster(t, sharedDir, journalDir, nil)
	var pairs []kvio.Pair
	mjA, err := mA.Jobs().Submit("wc", core.JobOptions{}, recoveryWordCount(&pairs))
	if err != nil {
		t.Fatal(err)
	}
	envA, sidA := recoveryEnv(t, mA)
	pump(t, mA, envA, sidA, 1, nil)
	mA.Crash()
	mjA.Wait()

	mB := recoveryMaster(t, sharedDir, journalDir, nil)
	if _, err := mB.Jobs().Resume(99, "wc", core.JobOptions{}, recoveryWordCount(&pairs)); err == nil {
		t.Fatal("resumed a job the journal never saw")
	}
	// Wrong program shape: different name, and different pipelining.
	if _, err := mB.Jobs().Resume(mjA.ID(), "other", core.JobOptions{}, recoveryWordCount(&pairs)); err == nil {
		t.Fatal("resumed under a different program name")
	}
	if _, err := mB.Jobs().Resume(mjA.ID(), "wc", core.JobOptions{Pipeline: true}, recoveryWordCount(&pairs)); err == nil {
		t.Fatal("resumed with a different pipelining mode")
	}
	mjB, err := mB.Jobs().Resume(mjA.ID(), "wc", core.JobOptions{}, recoveryWordCount(&pairs))
	if err != nil {
		t.Fatal(err)
	}
	// Double resume of a live job.
	if _, err := mB.Jobs().Resume(mjA.ID(), "wc", core.JobOptions{}, recoveryWordCount(&pairs)); err == nil {
		t.Fatal("double resume succeeded")
	}
	envB, sidB := recoveryEnv(t, mB)
	runToCompletion(t, mB, envB, sidB, mjB)
	mB.Close()

	// A done job cannot be resumed (its data was reclaimed).
	mC := recoveryMaster(t, sharedDir, journalDir, nil)
	if _, err := mC.Jobs().Resume(mjA.ID(), "wc", core.JobOptions{}, recoveryWordCount(&pairs)); err == nil {
		t.Fatal("resumed a completed job")
	}
}

// Regression (satellite fix): two live masters must not share a journal
// directory — the second Recover fails fast on the lock file.
func TestDoubleRecoverFailsFast(t *testing.T) {
	journalDir := t.TempDir()
	mA := recoveryMaster(t, t.TempDir(), journalDir, nil)
	_, err := New(Options{
		SharedDir:  t.TempDir(),
		JournalDir: journalDir,
		Clock:      clock.NewFake(time.Unix(0, 0)),
	})
	if err == nil {
		t.Fatal("second master recovered a locked journal dir")
	}
	if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("error does not name the lock: %v", err)
	}
	// The crash releases the lock; a restart succeeds.
	mA.Crash()
	mB := recoveryMaster(t, t.TempDir(), journalDir, nil)
	mB.Close()
}

// Regression (satellite fix): Close flushes and releases the journal
// before anything else of the shutdown proceeds — afterwards the
// directory is checkpointed, unlocked, and immediately reusable.
func TestCloseFlushesAndReleasesJournal(t *testing.T) {
	sharedDir, journalDir := t.TempDir(), t.TempDir()
	m := recoveryMaster(t, sharedDir, journalDir, nil)
	env, sid := recoveryEnv(t, m)
	var pairs []kvio.Pair
	mj, err := m.Jobs().Submit("wc", core.JobOptions{}, recoveryWordCount(&pairs))
	if err != nil {
		t.Fatal(err)
	}
	pump(t, m, env, sid, 3, nil)
	if err := m.Crash(); err != nil { // interrupt mid-job...
		t.Fatal(err)
	}
	mj.Wait()

	// ...recover and shut down cleanly mid-job.
	m2 := recoveryMaster(t, sharedDir, journalDir, nil)
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean shutdown checkpointed: state is intact and the lock is free.
	st, err := journal.Inspect(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if jr := st.Job(int64(mj.ID())); jr == nil || jr.State != journal.JobRunning || jr.TasksDone != 3 {
		t.Fatalf("journal after clean close: %+v", st.Job(int64(mj.ID())))
	}
	jl, st2, err := journal.Open(journalDir, journal.Options{})
	if err != nil {
		t.Fatalf("journal still locked after Close: %v", err)
	}
	if jr := st2.Job(int64(mj.ID())); jr == nil || jr.TasksDone != 3 {
		t.Fatalf("reopened journal state: %+v", st2.Job(int64(mj.ID())))
	}
	jl.Close()
}
