package master

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/rpcproto"
	"repro/internal/xmlrpc"
)

func newMaster(t *testing.T, opts Options) *Master {
	t.Helper()
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func client(m *Master) *xmlrpc.Client {
	return xmlrpc.NewClient(m.URL())
}

func signin(t *testing.T, m *Master) rpcproto.SigninReply {
	t.Helper()
	raw, err := client(m).Call(rpcproto.MethodSignin)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := rpcproto.DecodeSigninReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestPortFile(t *testing.T) {
	dir := t.TempDir()
	pf := filepath.Join(dir, "port")
	m := newMaster(t, Options{PortFile: pf})
	data, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != m.Addr() {
		t.Errorf("port file contains %q, master at %q", got, m.Addr())
	}
}

func TestSigninAssignsDistinctIDs(t *testing.T) {
	m := newMaster(t, Options{})
	a := signin(t, m)
	b := signin(t, m)
	if a.SlaveID == b.SlaveID {
		t.Errorf("duplicate slave id %q", a.SlaveID)
	}
	if m.NumSlaves() != 2 {
		t.Errorf("NumSlaves = %d", m.NumSlaves())
	}
	if m.Stats().SlavesSeen != 2 {
		t.Errorf("SlavesSeen = %d", m.Stats().SlavesSeen)
	}
}

func TestPingUnknownSlaveRejected(t *testing.T) {
	m := newMaster(t, Options{})
	if _, err := client(m).Call(rpcproto.MethodPing, "slave-999"); err == nil {
		t.Error("ping from unknown slave accepted")
	}
}

func TestGetTaskIdleWhenNoWork(t *testing.T) {
	m := newMaster(t, Options{LongPoll: 50 * time.Millisecond})
	reply := signin(t, m)
	raw, err := client(m).Call(rpcproto.MethodGetTask, reply.SlaveID)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rpcproto.DecodeAssignment(raw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != rpcproto.StatusIdle {
		t.Errorf("status = %q, want idle", a.Status)
	}
}

func TestGetTaskAfterCloseIsShutdown(t *testing.T) {
	m, err := New(Options{LongPoll: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reply := signin(t, m)
	// Closing in the background while a long poll could be in flight.
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	raw, err := client(m).Call(rpcproto.MethodGetTask, reply.SlaveID)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rpcproto.DecodeAssignment(raw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != rpcproto.StatusShutdown {
		t.Errorf("status = %q, want shutdown", a.Status)
	}
	m.mu.Lock()
	m.closed = false
	m.mu.Unlock()
	m.Close()
}

func TestReaperRemovesSilentSlaves(t *testing.T) {
	m := newMaster(t, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
	})
	signin(t, m)
	deadline := time.Now().Add(3 * time.Second)
	for m.NumSlaves() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent slave never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.Stats().SlavesLost != 1 {
		t.Errorf("SlavesLost = %d", m.Stats().SlavesLost)
	}
}

func TestHeartbeatKeepsSlaveAlive(t *testing.T) {
	m := newMaster(t, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
	})
	reply := signin(t, m)
	c := client(m)
	for i := 0; i < 10; i++ {
		if _, err := c.Call(rpcproto.MethodPing, reply.SlaveID); err != nil {
			t.Fatal(err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if m.NumSlaves() != 1 {
		t.Error("heartbeating slave was reaped")
	}
}

func TestWaitForSlavesTimeout(t *testing.T) {
	m := newMaster(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.WaitForSlaves(ctx, 3); err == nil {
		t.Error("WaitForSlaves returned without slaves")
	}
}

func TestHandlerArgValidation(t *testing.T) {
	m := newMaster(t, Options{})
	c := client(m)
	cases := []struct {
		method string
		args   []any
	}{
		{rpcproto.MethodPing, nil},
		{rpcproto.MethodPing, []any{int64(7)}},
		{rpcproto.MethodTaskDone, []any{"slave-1"}},
		{rpcproto.MethodTaskDone, []any{"slave-1", "not-an-int", []any{}}},
		{rpcproto.MethodTaskFailed, []any{"slave-1", int64(1)}},
	}
	for _, tc := range cases {
		if _, err := c.Call(tc.method, tc.args...); err == nil {
			t.Errorf("%s(%v) accepted", tc.method, tc.args)
		}
	}
}

func TestDataServerRejectsTraversal(t *testing.T) {
	m := newMaster(t, Options{})
	// Fetch via the bucket store's http path with a traversal name.
	resp, err := xmlrpc.NewClient("http://" + m.Addr() + "/RPC2").HTTPClient.Get(
		"http://" + m.Addr() + "/data/..%2F..%2Fetc%2Fpasswd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("path traversal served")
	}
}

func TestCloseIdempotent(t *testing.T) {
	m, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
