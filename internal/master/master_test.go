package master

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/rpcproto"
	"repro/internal/xmlrpc"
)

func specsForTest(n int) []*core.TaskSpec {
	out := make([]*core.TaskSpec, n)
	for i := range out {
		out[i] = &core.TaskSpec{
			Op:        &core.Operation{Kind: core.OpMap, FuncName: "m", Splits: 1, Dataset: 1},
			TaskIndex: i,
			InputURLs: []string{"mem:0/none"},
		}
	}
	return out
}

func newMaster(t *testing.T, opts Options) *Master {
	t.Helper()
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func client(m *Master) *xmlrpc.Client {
	return xmlrpc.NewClient(m.URL())
}

func signin(t *testing.T, m *Master) rpcproto.SigninReply {
	t.Helper()
	raw, err := client(m).Call(rpcproto.MethodSignin)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := rpcproto.DecodeSigninReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestPortFile(t *testing.T) {
	dir := t.TempDir()
	pf := filepath.Join(dir, "port")
	m := newMaster(t, Options{PortFile: pf})
	data, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != m.Addr() {
		t.Errorf("port file contains %q, master at %q", got, m.Addr())
	}
}

func TestSigninAssignsDistinctIDs(t *testing.T) {
	m := newMaster(t, Options{})
	a := signin(t, m)
	b := signin(t, m)
	if a.SlaveID == b.SlaveID {
		t.Errorf("duplicate slave id %q", a.SlaveID)
	}
	if m.NumSlaves() != 2 {
		t.Errorf("NumSlaves = %d", m.NumSlaves())
	}
	if m.Stats().SlavesSeen != 2 {
		t.Errorf("SlavesSeen = %d", m.Stats().SlavesSeen)
	}
}

func TestPingUnknownSlaveRejected(t *testing.T) {
	m := newMaster(t, Options{})
	if _, err := client(m).Call(rpcproto.MethodPing, "slave-999"); err == nil {
		t.Error("ping from unknown slave accepted")
	}
}

func TestGetTaskIdleWhenNoWork(t *testing.T) {
	m := newMaster(t, Options{LongPoll: 50 * time.Millisecond})
	reply := signin(t, m)
	raw, err := client(m).Call(rpcproto.MethodGetTask, reply.SlaveID)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rpcproto.DecodeAssignment(raw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != rpcproto.StatusIdle {
		t.Errorf("status = %q, want idle", a.Status)
	}
}

func TestGetTaskAfterCloseIsShutdown(t *testing.T) {
	m, err := New(Options{LongPoll: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reply := signin(t, m)
	// Closing in the background while a long poll could be in flight.
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	raw, err := client(m).Call(rpcproto.MethodGetTask, reply.SlaveID)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rpcproto.DecodeAssignment(raw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != rpcproto.StatusShutdown {
		t.Errorf("status = %q, want shutdown", a.Status)
	}
	m.mu.Lock()
	m.closed = false
	m.mu.Unlock()
	m.Close()
}

// waitCond polls for an asynchronous effect (reaper goroutine catching
// up with an already-advanced fake clock); no simulated time passes
// while polling.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReaperRemovesSilentSlaves(t *testing.T) {
	// Driven entirely by the fake clock: the slave goes "silent" by the
	// clock jumping past the heartbeat timeout, no real sleeps.
	clk := clock.NewFake(time.Unix(1000, 0))
	m := newMaster(t, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
		Clock:             clk,
	})
	signin(t, m)
	if m.NumSlaves() != 1 {
		t.Fatal("slave not signed in")
	}
	clk.Advance(100 * time.Millisecond) // past timeout; fires the reaper tick
	waitCond(t, "silent slave to be reaped", func() bool { return m.NumSlaves() == 0 })
	if m.Stats().SlavesLost != 1 {
		t.Errorf("SlavesLost = %d", m.Stats().SlavesLost)
	}
}

func TestHeartbeatKeepsSlaveAlive(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	m := newMaster(t, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		Clock:             clk,
	})
	reply := signin(t, m)
	c := client(m)
	// Advance in sub-timeout steps, pinging after each: the reaper ticks
	// fire but the slave is never older than the cutoff.
	for i := 0; i < 10; i++ {
		clk.Advance(60 * time.Millisecond)
		if _, err := c.Call(rpcproto.MethodPing, reply.SlaveID); err != nil {
			t.Fatal(err)
		}
	}
	if m.NumSlaves() != 1 {
		t.Error("heartbeating slave was reaped")
	}
}

func TestTaskLeaseRequeuesLostAssignment(t *testing.T) {
	// A slave takes a task and its get_task response is "lost" (it never
	// reports back but keeps heartbeating). With TaskLease set, the
	// reaper reclaims the assignment once the lease expires — without
	// declaring the slave dead.
	clk := clock.NewFake(time.Unix(1000, 0))
	m := newMaster(t, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Second, // slave stays alive throughout
		TaskLease:         200 * time.Millisecond,
		LongPoll:          time.Millisecond,
		Clock:             clk,
	})
	reply := signin(t, m)
	task, err := m.Scheduler().SubmitGroup(specsForTest(1))
	if err != nil {
		t.Fatal(err)
	}
	_ = task
	raw, err := client(m).Call(rpcproto.MethodGetTask, reply.SlaveID)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rpcproto.DecodeAssignment(raw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != rpcproto.StatusTask {
		t.Fatalf("status = %q, want task", a.Status)
	}
	if m.Scheduler().Running() != 1 {
		t.Fatal("task not running")
	}
	// The reaper ticks every HeartbeatTimeout/2 (5s); one tick is far
	// past the 200ms lease but still inside the 10s liveness window.
	clk.Advance(5 * time.Second)
	waitCond(t, "stale lease requeue", func() bool { return m.Scheduler().Pending() == 1 })
	if m.Scheduler().Running() != 0 {
		t.Errorf("Running = %d after lease expiry", m.Scheduler().Running())
	}
	if m.Stats().TasksRequeued != 1 {
		t.Errorf("TasksRequeued = %d, want 1", m.Stats().TasksRequeued)
	}
	if m.NumSlaves() != 1 {
		t.Error("slave wrongly reaped by lease requeue")
	}
}

func TestWaitForSlavesTimeout(t *testing.T) {
	m := newMaster(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.WaitForSlaves(ctx, 3); err == nil {
		t.Error("WaitForSlaves returned without slaves")
	}
}

func TestHandlerArgValidation(t *testing.T) {
	m := newMaster(t, Options{})
	c := client(m)
	cases := []struct {
		method string
		args   []any
	}{
		{rpcproto.MethodPing, nil},
		{rpcproto.MethodPing, []any{int64(7)}},
		{rpcproto.MethodTaskDone, []any{"slave-1"}},
		{rpcproto.MethodTaskDone, []any{"slave-1", "not-an-int", []any{}}},
		{rpcproto.MethodTaskFailed, []any{"slave-1", int64(1)}},
	}
	for _, tc := range cases {
		if _, err := c.Call(tc.method, tc.args...); err == nil {
			t.Errorf("%s(%v) accepted", tc.method, tc.args)
		}
	}
}

func TestDataServerRejectsTraversal(t *testing.T) {
	m := newMaster(t, Options{})
	// Fetch via the bucket store's http path with a traversal name.
	resp, err := xmlrpc.NewClient("http://" + m.Addr() + "/RPC2").HTTPClient.Get(
		"http://" + m.Addr() + "/data/..%2F..%2Fetc%2Fpasswd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("path traversal served")
	}
}

func TestCloseIdempotent(t *testing.T) {
	m, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
