package master

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/sched"
)

// DefaultMaxConcurrentJobs bounds how many managed jobs execute at
// once when Options.MaxConcurrentJobs is unset.
const DefaultMaxConcurrentJobs = 4

// JobState is a managed job's lifecycle phase.
type JobState string

const (
	JobQueued  JobState = "queued" // admitted, waiting for a run slot
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ManagedJob is the handle Submit returns: the job's identity plus a
// Wait that resolves when the job's driver has fully drained.
type ManagedJob struct {
	id   core.JobID
	name string

	mu    sync.Mutex
	state JobState
	err   error
	done  chan struct{}
}

// ID returns the job's cluster-wide id (positive; 0 is reserved for
// unmanaged single-job executors).
func (mj *ManagedJob) ID() core.JobID { return mj.id }

// Name returns the label the submitter gave the job.
func (mj *ManagedJob) Name() string { return mj.name }

// State returns the job's current lifecycle phase.
func (mj *ManagedJob) State() JobState {
	mj.mu.Lock()
	defer mj.mu.Unlock()
	return mj.state
}

// Wait blocks until the job has completed (its driver closed, all
// tasks drained) and returns its first error, if any.
func (mj *ManagedJob) Wait() error {
	<-mj.done
	mj.mu.Lock()
	defer mj.mu.Unlock()
	return mj.err
}

func (mj *ManagedJob) setState(st JobState, err error) {
	mj.mu.Lock()
	mj.state = st
	if err != nil && mj.err == nil {
		mj.err = err
	}
	mj.mu.Unlock()
}

// JobInfo is one row of the manager's job listing (rendered on
// /debug/status).
type JobInfo struct {
	ID    core.JobID
	Name  string
	State JobState
	Err   error
}

// JobManager hosts concurrent core.Job executors on one master. Each
// submitted job gets a fresh positive JobID (threading through bucket
// names, scheduler queues, RPC assignments, metrics labels, and trace
// process lanes), runs the caller's driver function behind a bounded
// admission queue, and on completion triggers cluster-wide reclamation
// of the job's intermediate data.
type JobManager struct {
	m *Master

	mu            sync.Mutex
	cond          *sync.Cond
	maxConcurrent int
	running       int
	queue         []core.JobID // admission order; head runs next
	nextID        core.JobID
	jobs          map[core.JobID]*ManagedJob
	order         []core.JobID
	wg            sync.WaitGroup
}

func newJobManager(m *Master, maxConcurrent int) *JobManager {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	jm := &JobManager{
		m:             m,
		maxConcurrent: maxConcurrent,
		jobs:          map[core.JobID]*ManagedJob{},
	}
	jm.cond = sync.NewCond(&jm.mu)
	mm := m.opts.Obs.M()
	mm.SetGauge("mrs_jobs_queued", func() int64 { return jm.countState(JobQueued) })
	mm.SetGauge("mrs_jobs_running", func() int64 { return jm.countState(JobRunning) })
	return jm
}

// admit blocks until mj reaches the head of the admission queue and a
// run slot is free — strict submission order, not a goroutine race.
func (jm *JobManager) admit(mj *ManagedJob) {
	jm.mu.Lock()
	for jm.running >= jm.maxConcurrent || jm.queue[0] != mj.id {
		jm.cond.Wait()
	}
	jm.queue = jm.queue[1:]
	jm.running++
	jm.cond.Broadcast() // the new queue head may admit into a free slot
	jm.mu.Unlock()
}

func (jm *JobManager) release() {
	jm.mu.Lock()
	jm.running--
	jm.cond.Broadcast()
	jm.mu.Unlock()
}

// Submit admits a job named name and returns immediately with its
// handle. run receives a job driver wired to the master (opts.ID is
// overridden with the assigned JobID); it queues operations and
// collects whatever results it needs — once it returns, the driver is
// closed (draining every queued operation), the job's intermediate
// data is reclaimed fleet-wide, and Wait resolves. At most the
// manager's admission width of jobs run concurrently; the rest start
// in submission order as slots free up.
func (jm *JobManager) Submit(name string, opts core.JobOptions, run func(*core.Job) error) (*ManagedJob, error) {
	jm.m.mu.Lock()
	closed := jm.m.closed
	jm.m.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("master: closed")
	}
	jm.mu.Lock()
	jm.nextID++
	mj := &ManagedJob{id: jm.nextID, name: name, state: JobQueued, done: make(chan struct{})}
	jm.jobs[mj.id] = mj
	jm.order = append(jm.order, mj.id)
	jm.queue = append(jm.queue, mj.id)
	jm.wg.Add(1)
	jm.mu.Unlock()

	jm.m.journalAppend(journal.Event{
		Kind:     journal.EvJobSubmitted,
		Job:      int64(mj.id),
		Name:     name,
		SpecHash: journal.SpecHash(name, opts.Pipeline),
	})
	jm.launch(mj, opts, run)
	return mj, nil
}

// Resume reattaches a driver to a job journaled by a previous master
// run. The caller presents the same name and an equivalent driver (the
// journal's spec hash must match — a resumed job re-drives the same
// deterministic program, and tasks the journal already holds outputs
// for are answered without re-execution). The job runs under its
// original id; finished or failed jobs cannot be resumed (their
// intermediate data was reclaimed), nor can a job be resumed twice.
func (jm *JobManager) Resume(id core.JobID, name string, opts core.JobOptions, run func(*core.Job) error) (*ManagedJob, error) {
	jm.m.mu.Lock()
	closed := jm.m.closed
	jm.m.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("master: closed")
	}
	jr := jm.m.recovered.Job(int64(id))
	if jr == nil {
		return nil, fmt.Errorf("master: no journaled job %d to resume", id)
	}
	switch jr.State {
	case journal.JobDone:
		return nil, fmt.Errorf("master: job %d already completed; its outputs were reclaimed", id)
	case journal.JobFailed:
		return nil, fmt.Errorf("master: job %d failed before the crash: %s", id, jr.Error)
	}
	if want := journal.SpecHash(name, opts.Pipeline); jr.SpecHash != "" && jr.SpecHash != want {
		return nil, fmt.Errorf("master: job %d was submitted as %q (spec %s), refusing to resume a different program (spec %s)",
			id, jr.Name, jr.SpecHash, want)
	}

	jm.mu.Lock()
	if _, exists := jm.jobs[id]; exists {
		jm.mu.Unlock()
		return nil, fmt.Errorf("master: job %d already resumed", id)
	}
	if jm.nextID < id {
		jm.nextID = id
	}
	mj := &ManagedJob{id: id, name: name, state: JobQueued, done: make(chan struct{})}
	jm.jobs[id] = mj
	jm.order = append(jm.order, id)
	jm.queue = append(jm.queue, id)
	jm.wg.Add(1)
	jm.mu.Unlock()

	// Re-journal the submission: idempotent under replay, and it makes a
	// journal whose checkpoint predates this master's run self-contained.
	jm.m.journalAppend(journal.Event{
		Kind:     journal.EvJobSubmitted,
		Job:      int64(id),
		Name:     name,
		SpecHash: journal.SpecHash(name, opts.Pipeline),
	})
	jm.launch(mj, opts, run)
	return mj, nil
}

// launch runs the admitted job's driver and settles its lifecycle —
// shared by Submit and Resume.
func (jm *JobManager) launch(mj *ManagedJob, opts core.JobOptions, run func(*core.Job) error) {
	if opts.Obs == nil {
		opts.Obs = jm.m.opts.Obs
	}
	opts.ID = mj.id
	go func() {
		defer jm.wg.Done()
		jm.admit(mj)
		defer jm.release()
		mj.setState(JobRunning, nil)
		job := core.NewJobWith(jm.m, opts)
		runErr := run(job)
		closeErr := job.Close()
		if runErr == nil {
			runErr = closeErr
		}
		jm.m.jobComplete(mj.id)
		if runErr != nil {
			mj.setState(JobFailed, runErr)
			jm.m.opts.Obs.M().Add(obs.JobSeries("mrs_jobs_failed_total", int64(mj.id)), 1)
			// A job interrupted by master shutdown is not failed — it
			// stays "running" in the journal, which is exactly what
			// makes it resumable after a restart.
			if !errors.Is(runErr, sched.ErrClosed) {
				jm.m.journalAppend(journal.Event{Kind: journal.EvJobFailed, Job: int64(mj.id), Error: runErr.Error()})
			}
		} else {
			mj.setState(JobDone, nil)
			jm.m.journalAppend(journal.Event{Kind: journal.EvJobDone, Job: int64(mj.id)})
		}
		close(mj.done)
	}()
}

// List snapshots every job the manager has hosted, in submission
// order.
func (jm *JobManager) List() []JobInfo {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	out := make([]JobInfo, 0, len(jm.order))
	for _, id := range jm.order {
		mj := jm.jobs[id]
		mj.mu.Lock()
		out = append(out, JobInfo{ID: id, Name: mj.name, State: mj.state, Err: mj.err})
		mj.mu.Unlock()
	}
	return out
}

// WaitAll blocks until every submitted job has completed.
func (jm *JobManager) WaitAll() {
	jm.wg.Wait()
}

func (jm *JobManager) countState(st JobState) int64 {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	var n int64
	for _, mj := range jm.jobs {
		mj.mu.Lock()
		if mj.state == st {
			n++
		}
		mj.mu.Unlock()
	}
	return n
}
