package master

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultMaxConcurrentJobs bounds how many managed jobs execute at
// once when Options.MaxConcurrentJobs is unset.
const DefaultMaxConcurrentJobs = 4

// JobState is a managed job's lifecycle phase.
type JobState string

const (
	JobQueued  JobState = "queued" // admitted, waiting for a run slot
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ManagedJob is the handle Submit returns: the job's identity plus a
// Wait that resolves when the job's driver has fully drained.
type ManagedJob struct {
	id   core.JobID
	name string

	mu    sync.Mutex
	state JobState
	err   error
	done  chan struct{}
}

// ID returns the job's cluster-wide id (positive; 0 is reserved for
// unmanaged single-job executors).
func (mj *ManagedJob) ID() core.JobID { return mj.id }

// Name returns the label the submitter gave the job.
func (mj *ManagedJob) Name() string { return mj.name }

// State returns the job's current lifecycle phase.
func (mj *ManagedJob) State() JobState {
	mj.mu.Lock()
	defer mj.mu.Unlock()
	return mj.state
}

// Wait blocks until the job has completed (its driver closed, all
// tasks drained) and returns its first error, if any.
func (mj *ManagedJob) Wait() error {
	<-mj.done
	mj.mu.Lock()
	defer mj.mu.Unlock()
	return mj.err
}

func (mj *ManagedJob) setState(st JobState, err error) {
	mj.mu.Lock()
	mj.state = st
	if err != nil && mj.err == nil {
		mj.err = err
	}
	mj.mu.Unlock()
}

// JobInfo is one row of the manager's job listing (rendered on
// /debug/status).
type JobInfo struct {
	ID    core.JobID
	Name  string
	State JobState
	Err   error
}

// JobManager hosts concurrent core.Job executors on one master. Each
// submitted job gets a fresh positive JobID (threading through bucket
// names, scheduler queues, RPC assignments, metrics labels, and trace
// process lanes), runs the caller's driver function behind a bounded
// admission queue, and on completion triggers cluster-wide reclamation
// of the job's intermediate data.
type JobManager struct {
	m *Master

	mu            sync.Mutex
	cond          *sync.Cond
	maxConcurrent int
	running       int
	queue         []core.JobID // admission order; head runs next
	nextID        core.JobID
	jobs          map[core.JobID]*ManagedJob
	order         []core.JobID
	wg            sync.WaitGroup
}

func newJobManager(m *Master, maxConcurrent int) *JobManager {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	jm := &JobManager{
		m:             m,
		maxConcurrent: maxConcurrent,
		jobs:          map[core.JobID]*ManagedJob{},
	}
	jm.cond = sync.NewCond(&jm.mu)
	mm := m.opts.Obs.M()
	mm.SetGauge("mrs_jobs_queued", func() int64 { return jm.countState(JobQueued) })
	mm.SetGauge("mrs_jobs_running", func() int64 { return jm.countState(JobRunning) })
	return jm
}

// admit blocks until mj reaches the head of the admission queue and a
// run slot is free — strict submission order, not a goroutine race.
func (jm *JobManager) admit(mj *ManagedJob) {
	jm.mu.Lock()
	for jm.running >= jm.maxConcurrent || jm.queue[0] != mj.id {
		jm.cond.Wait()
	}
	jm.queue = jm.queue[1:]
	jm.running++
	jm.cond.Broadcast() // the new queue head may admit into a free slot
	jm.mu.Unlock()
}

func (jm *JobManager) release() {
	jm.mu.Lock()
	jm.running--
	jm.cond.Broadcast()
	jm.mu.Unlock()
}

// Submit admits a job named name and returns immediately with its
// handle. run receives a job driver wired to the master (opts.ID is
// overridden with the assigned JobID); it queues operations and
// collects whatever results it needs — once it returns, the driver is
// closed (draining every queued operation), the job's intermediate
// data is reclaimed fleet-wide, and Wait resolves. At most the
// manager's admission width of jobs run concurrently; the rest start
// in submission order as slots free up.
func (jm *JobManager) Submit(name string, opts core.JobOptions, run func(*core.Job) error) (*ManagedJob, error) {
	jm.m.mu.Lock()
	closed := jm.m.closed
	jm.m.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("master: closed")
	}
	jm.mu.Lock()
	jm.nextID++
	mj := &ManagedJob{id: jm.nextID, name: name, state: JobQueued, done: make(chan struct{})}
	jm.jobs[mj.id] = mj
	jm.order = append(jm.order, mj.id)
	jm.queue = append(jm.queue, mj.id)
	jm.wg.Add(1)
	jm.mu.Unlock()

	if opts.Obs == nil {
		opts.Obs = jm.m.opts.Obs
	}
	opts.ID = mj.id
	go func() {
		defer jm.wg.Done()
		jm.admit(mj)
		defer jm.release()
		mj.setState(JobRunning, nil)
		job := core.NewJobWith(jm.m, opts)
		runErr := run(job)
		closeErr := job.Close()
		if runErr == nil {
			runErr = closeErr
		}
		jm.m.jobComplete(mj.id)
		if runErr != nil {
			mj.setState(JobFailed, runErr)
			jm.m.opts.Obs.M().Add(obs.JobSeries("mrs_jobs_failed_total", int64(mj.id)), 1)
		} else {
			mj.setState(JobDone, nil)
		}
		close(mj.done)
	}()
	return mj, nil
}

// List snapshots every job the manager has hosted, in submission
// order.
func (jm *JobManager) List() []JobInfo {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	out := make([]JobInfo, 0, len(jm.order))
	for _, id := range jm.order {
		mj := jm.jobs[id]
		mj.mu.Lock()
		out = append(out, JobInfo{ID: id, Name: mj.name, State: mj.state, Err: mj.err})
		mj.mu.Unlock()
	}
	return out
}

// WaitAll blocks until every submitted job has completed.
func (jm *JobManager) WaitAll() {
	jm.wg.Wait()
}

func (jm *JobManager) countState(st JobState) int64 {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	var n int64
	for _, mj := range jm.jobs {
		mj.mu.Lock()
		if mj.state == st {
			n++
		}
		mj.mu.Unlock()
	}
	return n
}
