package hdfssim

import (
	"testing"
	"testing/quick"
	"time"
)

func nodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + i))
	}
	return out
}

func TestAddFileBlocks(t *testing.T) {
	ns := NewNamespace(nodes(4), 100, 3)
	if err := ns.AddFile("/x", 250); err != nil {
		t.Fatal(err)
	}
	blocks, err := ns.Blocks("/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	if blocks[0].Size != 100 || blocks[2].Size != 50 {
		t.Errorf("block sizes: %d, %d, %d", blocks[0].Size, blocks[1].Size, blocks[2].Size)
	}
	for _, b := range blocks {
		if len(b.Locations) != 3 {
			t.Errorf("block %d has %d replicas", b.ID, len(b.Locations))
		}
		seen := map[string]bool{}
		for _, l := range b.Locations {
			if seen[l] {
				t.Errorf("block %d replicated twice on %s", b.ID, l)
			}
			seen[l] = true
		}
	}
}

func TestEmptyFile(t *testing.T) {
	ns := NewNamespace(nodes(2), 100, 2)
	if err := ns.AddFile("/empty", 0); err != nil {
		t.Fatal(err)
	}
	blocks, _ := ns.Blocks("/empty")
	if len(blocks) != 1 || blocks[0].Size != 0 {
		t.Errorf("empty file blocks: %+v", blocks)
	}
}

func TestDuplicateFileRejected(t *testing.T) {
	ns := NewNamespace(nodes(2), 100, 1)
	ns.AddFile("/x", 10)
	if err := ns.AddFile("/x", 10); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestDelete(t *testing.T) {
	ns := NewNamespace(nodes(2), 100, 1)
	ns.AddFile("/x", 10)
	if err := ns.Delete("/x"); err != nil {
		t.Fatal(err)
	}
	if err := ns.Delete("/x"); err == nil {
		t.Error("double delete accepted")
	}
	if ns.NumFiles() != 0 {
		t.Errorf("NumFiles = %d", ns.NumFiles())
	}
}

func TestReplicationClampedToNodes(t *testing.T) {
	ns := NewNamespace(nodes(2), 100, 3)
	ns.AddFile("/x", 10)
	blocks, _ := ns.Blocks("/x")
	if len(blocks[0].Locations) != 2 {
		t.Errorf("replicas = %d, want clamped 2", len(blocks[0].Locations))
	}
}

func TestUsedBytesIncludesReplication(t *testing.T) {
	ns := NewNamespace(nodes(5), 1000, 3)
	ns.AddFile("/x", 500)
	if got := ns.TotalBytes(); got != 500 {
		t.Errorf("TotalBytes = %d", got)
	}
	if got := ns.UsedBytes(); got != 1500 {
		t.Errorf("UsedBytes = %d, want 1500", got)
	}
}

func TestPlacementBalance(t *testing.T) {
	ns := NewNamespace(nodes(4), 10, 2)
	for i := 0; i < 100; i++ {
		if err := ns.AddFile(string(rune('A'+i%26))+string(rune('0'+i/26)), 10); err != nil {
			t.Fatal(err)
		}
	}
	load := ns.DatanodeLoad()
	var minL, maxL int64 = 1 << 62, 0
	for _, l := range load {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if maxL > minL*2 {
		t.Errorf("placement imbalanced: min %d, max %d", minL, maxL)
	}
}

func TestBytesConservedProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		ns := NewNamespace(nodes(3), 4096, 2)
		var want int64
		for i, s := range sizes {
			name := string(rune('a'+i%26)) + string(rune('0'+i/26))
			if ns.AddFile(name, int64(s)) != nil {
				return true // name collision in generated data; skip
			}
			want += int64(s)
		}
		return ns.TotalBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScanTimeMatchesPaperCalibration(t *testing.T) {
	c := DefaultCosts()
	// Subset: 8,316 files should take about a minute ("Hadoop takes one
	// minute to prepare the data").
	sub := c.ScanTime(8316)
	if sub < 45*time.Second || sub > 80*time.Second {
		t.Errorf("subset scan = %v, want ~1 min", sub)
	}
	// Full: 31,173 files should take nearly nine minutes.
	full := c.ScanTime(31173)
	if full < 8*time.Minute || full > 10*time.Minute {
		t.Errorf("full scan = %v, want ~9 min", full)
	}
}

func TestScanTimeSuperlinear(t *testing.T) {
	c := DefaultCosts()
	t1 := c.ScanTime(1000)
	t4 := c.ScanTime(4000)
	if t4 < 4*t1 {
		t.Errorf("scan should be superlinear: %v vs 4x%v", t4, t1)
	}
}

func TestStageTime(t *testing.T) {
	c := DefaultCosts()
	d := c.StageTime(10, 400<<20) // 400 MB at 200 MB/s ≈ 2s + metadata
	if d < 2*time.Second || d > 3*time.Second {
		t.Errorf("StageTime = %v", d)
	}
	zero := Costs{}
	if zero.StageTime(10, 1<<30) != 0 {
		t.Error("zero throughput should yield 0")
	}
}

func TestNoDatanodes(t *testing.T) {
	ns := NewNamespace(nil, 100, 3)
	if err := ns.AddFile("/x", 10); err == nil {
		t.Error("AddFile with no datanodes accepted")
	}
}
