// Package hdfssim models the Hadoop Distributed File System to the
// fidelity the paper's experiments require: a namenode namespace with
// block placement across datanodes, plus a cost model for the
// operations that dominate the paper's Hadoop numbers — formatting,
// staging data in and out ("any data to be processed by the MapReduce
// program must be copied into the HDFS, and likewise data produced must
// be copied back out"), and per-file metadata work during input
// scanning (the source of Hadoop's nine-minute startup on the full
// Gutenberg tree).
package hdfssim

import (
	"fmt"
	"sort"
	"time"
)

// DefaultBlockSize is the classic HDFS block size of the era.
const DefaultBlockSize = 64 << 20

// DefaultReplication is HDFS's default replica count.
const DefaultReplication = 3

// Block is one replicated file block.
type Block struct {
	ID        int64
	Size      int64
	Locations []string // datanode names
}

// file is a namespace entry.
type file struct {
	name   string
	size   int64
	blocks []Block
}

// Namespace is the namenode's metadata: files, blocks, and placement.
type Namespace struct {
	blockSize   int64
	replication int
	datanodes   []string
	nextBlock   int64
	rrCursor    int
	files       map[string]*file
}

// NewNamespace creates a formatted namespace over the given datanodes.
func NewNamespace(datanodes []string, blockSize int64, replication int) *Namespace {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if replication <= 0 {
		replication = DefaultReplication
	}
	if replication > len(datanodes) && len(datanodes) > 0 {
		replication = len(datanodes)
	}
	return &Namespace{
		blockSize:   blockSize,
		replication: replication,
		datanodes:   append([]string(nil), datanodes...),
		files:       map[string]*file{},
	}
}

// AddFile writes a file of the given size, placing blocks round-robin
// with rack-unaware replication (adequate for cost modeling).
func (ns *Namespace) AddFile(name string, size int64) error {
	if _, dup := ns.files[name]; dup {
		return fmt.Errorf("hdfssim: %q exists", name)
	}
	if len(ns.datanodes) == 0 {
		return fmt.Errorf("hdfssim: no datanodes")
	}
	f := &file{name: name, size: size}
	remaining := size
	for remaining > 0 || len(f.blocks) == 0 {
		bs := remaining
		if bs > ns.blockSize {
			bs = ns.blockSize
		}
		if bs < 0 {
			bs = 0
		}
		b := Block{ID: ns.nextBlock, Size: bs}
		ns.nextBlock++
		for r := 0; r < ns.replication; r++ {
			dn := ns.datanodes[(ns.rrCursor+r)%len(ns.datanodes)]
			b.Locations = append(b.Locations, dn)
		}
		ns.rrCursor = (ns.rrCursor + 1) % len(ns.datanodes)
		f.blocks = append(f.blocks, b)
		remaining -= bs
		if bs == 0 {
			break
		}
	}
	ns.files[name] = f
	return nil
}

// Delete removes a file.
func (ns *Namespace) Delete(name string) error {
	if _, ok := ns.files[name]; !ok {
		return fmt.Errorf("hdfssim: %q not found", name)
	}
	delete(ns.files, name)
	return nil
}

// Blocks returns a file's block list.
func (ns *Namespace) Blocks(name string) ([]Block, error) {
	f, ok := ns.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfssim: %q not found", name)
	}
	return f.blocks, nil
}

// NumFiles returns the file count.
func (ns *Namespace) NumFiles() int { return len(ns.files) }

// TotalBytes returns the logical (pre-replication) byte count.
func (ns *Namespace) TotalBytes() int64 {
	var n int64
	for _, f := range ns.files {
		n += f.size
	}
	return n
}

// UsedBytes returns the physical bytes including replication.
func (ns *Namespace) UsedBytes() int64 {
	var n int64
	for _, f := range ns.files {
		for _, b := range f.blocks {
			n += b.Size * int64(len(b.Locations))
		}
	}
	return n
}

// DatanodeLoad returns stored bytes per datanode, sorted by name.
func (ns *Namespace) DatanodeLoad() map[string]int64 {
	load := map[string]int64{}
	for _, dn := range ns.datanodes {
		load[dn] = 0
	}
	for _, f := range ns.files {
		for _, b := range f.blocks {
			for _, dn := range b.Locations {
				load[dn] += b.Size
			}
		}
	}
	return load
}

// Files lists file names sorted.
func (ns *Namespace) Files() []string {
	out := make([]string, 0, len(ns.files))
	for n := range ns.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Cost model

// Costs models HDFS operation latencies. All constants are documented
// calibrations; see EXPERIMENTS.md.
type Costs struct {
	// Format is `hadoop namenode -format` plus daemon start readiness.
	Format time.Duration
	// MetadataOp is one namenode RPC (open, getFileStatus, …).
	MetadataOp time.Duration
	// ScanPerFileLinear and ScanPerFileQuad model input-directory
	// scanning: t(n) = Linear·n + Quad·n². The quadratic term captures
	// the namenode's degradation with many directories, calibrated so
	// the paper's subset (8,316 files ≈ 1 min) and full set (31,173
	// files ≈ 9 min) both fit.
	ScanPerFileLinear time.Duration
	ScanPerFileQuad   time.Duration
	// StageThroughput is copyFromLocal/copyToLocal bytes per second.
	StageThroughput int64
}

// DefaultCosts returns the calibrated 2012-era model.
func DefaultCosts() Costs {
	return Costs{
		Format:            10 * time.Second,
		MetadataOp:        2 * time.Millisecond,
		ScanPerFileLinear: 3655 * time.Microsecond, // fit: see EXPERIMENTS.md
		ScanPerFileQuad:   428 * time.Nanosecond,   // (per file²; t = L·n + Q·n²)
		StageThroughput:   200 << 20,               // 200 MB/s aggregate
	}
}

// ScanTime is the input-split enumeration time for n input files.
func (c Costs) ScanTime(n int) time.Duration {
	nn := float64(n)
	return time.Duration(float64(c.ScanPerFileLinear)*nn + float64(c.ScanPerFileQuad)*nn*nn)
}

// StageTime is the time to copy `bytes` in or out of HDFS, including a
// metadata op per file.
func (c Costs) StageTime(files int, bytes int64) time.Duration {
	if c.StageThroughput <= 0 {
		return 0
	}
	xfer := time.Duration(float64(bytes) / float64(c.StageThroughput) * float64(time.Second))
	return xfer + time.Duration(files)*c.MetadataOp
}
