package sched

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// fakeSched returns a scheduler on a fake clock with a metrics runtime
// attached, for deterministic speculation-trigger tests.
func fakeSched(t *testing.T, maxAttempts int) (*Scheduler, *clock.Fake, *obs.Runtime) {
	t.Helper()
	clk := clock.NewFake(time.Unix(1000, 0))
	s := NewWithClock(maxAttempts, clk)
	rt := obs.New(clk)
	s.SetObserver(rt)
	return s, clk, rt
}

// buildSamples completes n tasks on the slave, each taking d of fake
// time, seeding the operation's duration sample.
func buildSamples(t *testing.T, s *Scheduler, clk *clock.Fake, slave string, n int, d time.Duration) {
	t.Helper()
	g, err := s.SubmitGroup(specs(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		task, err := s.Request(slave, time.Second)
		if err != nil || task == nil {
			t.Fatalf("sample request %d: %v, %v", i, task, err)
		}
		clk.Advance(d)
		if err := s.Complete(task.ID, slave, result(task)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

// The quantile trigger: after three 100ms completions, a task running
// past factor×median (2×100ms) gets a duplicate queued — and not
// before.
func TestSpeculateQuantileTrigger(t *testing.T) {
	s, clk, rt := fakeSched(t, 0)
	defer s.Close()
	s.SetSpeculation(SpeculationConfig{SlownessFactor: 2, MinRuntime: time.Millisecond})
	buildSamples(t, s, clk, "w1", 3, 100*time.Millisecond)

	g, _ := s.SubmitGroup(specs(1))
	straggler, _ := s.Request("w1", time.Second)
	if straggler == nil {
		t.Fatal("no straggler task")
	}
	// Not slow yet: below 2×median.
	clk.Advance(150 * time.Millisecond)
	if n := s.Speculate(); n != 0 {
		t.Fatalf("speculated %d tasks at 150ms, want 0", n)
	}
	// Past the threshold: exactly one duplicate, and re-scanning does
	// not queue a second one.
	clk.Advance(100 * time.Millisecond)
	if n := s.Speculate(); n != 1 {
		t.Fatalf("speculated %d tasks at 250ms, want 1", n)
	}
	if n := s.Speculate(); n != 0 {
		t.Fatalf("re-scan speculated %d more, want 0", n)
	}
	if got := rt.M().Get(obs.MetricSchedSpeculative); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricSchedSpeculative, got)
	}

	// The duplicate must not go back to the straggling slave.
	if dup, _ := s.Request("w1", 0); dup != nil {
		t.Fatalf("duplicate handed back to the straggler's slave: %+v", dup)
	}
	dup, _ := s.Request("w2", time.Second)
	if dup == nil || dup.ID != straggler.ID {
		t.Fatalf("w2 got %+v, want duplicate of task %d", dup, straggler.ID)
	}

	// First completion wins: w2's fresh attempt finishes; the callback
	// fires once and the speculative win is counted.
	clk.Advance(10 * time.Millisecond)
	if err := s.Complete(dup.ID, "w2", result(dup)); err != nil {
		t.Fatal(err)
	}
	if res, err := g.Wait(); err != nil || res[0] == nil {
		t.Fatalf("group = %v, %v", res, err)
	}
	if got := rt.M().Get(obs.MetricSchedSpeculativeWins); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricSchedSpeculativeWins, got)
	}

	// The loser's late report is counted, not treated as an error.
	if err := s.Complete(straggler.ID, "w1", result(straggler)); err != nil {
		t.Fatal(err)
	}
	if got := rt.M().Get(obs.MetricSchedLateReports); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricSchedLateReports, got)
	}
}

// Too few samples: the quantile is noise, so no speculation fires no
// matter how long a task runs.
func TestSpeculateNeedsMinSamples(t *testing.T) {
	s, clk, _ := fakeSched(t, 0)
	defer s.Close()
	s.SetSpeculation(SpeculationConfig{SlownessFactor: 2, MinSamples: 3, MinRuntime: time.Millisecond})
	buildSamples(t, s, clk, "w1", 2, 10*time.Millisecond)

	s.SubmitGroup(specs(1))
	if task, _ := s.Request("w1", time.Second); task == nil {
		t.Fatal("no task")
	}
	clk.Advance(time.Hour)
	if n := s.Speculate(); n != 0 {
		t.Fatalf("speculated %d with 2 samples, want 0 (MinSamples 3)", n)
	}
}

// Speculation disabled (the default): Speculate is a no-op.
func TestSpeculateDisabledByDefault(t *testing.T) {
	s, clk, _ := fakeSched(t, 0)
	defer s.Close()
	buildSamples(t, s, clk, "w1", 3, 10*time.Millisecond)
	s.SubmitGroup(specs(1))
	s.Request("w1", time.Second)
	clk.Advance(time.Hour)
	if n := s.Speculate(); n != 0 {
		t.Fatalf("speculated %d with speculation disabled, want 0", n)
	}
}

// MinRuntime floors the threshold: tasks of a very fast operation are
// not duplicated over scheduling jitter.
func TestSpeculateMinRuntimeFloor(t *testing.T) {
	s, clk, _ := fakeSched(t, 0)
	defer s.Close()
	s.SetSpeculation(SpeculationConfig{SlownessFactor: 2, MinRuntime: time.Second})
	buildSamples(t, s, clk, "w1", 3, time.Millisecond)

	s.SubmitGroup(specs(1))
	s.Request("w1", time.Second)
	clk.Advance(500 * time.Millisecond) // far past 2×median, below the floor
	if n := s.Speculate(); n != 0 {
		t.Fatalf("speculated %d below MinRuntime floor, want 0", n)
	}
	clk.Advance(600 * time.Millisecond)
	if n := s.Speculate(); n != 1 {
		t.Fatalf("speculated %d past MinRuntime floor, want 1", n)
	}
}

// When the original attempt of a speculative race fails, the surviving
// duplicate is the retry: nothing is requeued and its completion still
// resolves the task.
func TestSpeculativeTwinSurvivesFailure(t *testing.T) {
	s, clk, _ := fakeSched(t, 0)
	defer s.Close()
	s.SetSpeculation(SpeculationConfig{SlownessFactor: 2, MinRuntime: time.Millisecond})
	buildSamples(t, s, clk, "w1", 3, 10*time.Millisecond)

	g, _ := s.SubmitGroup(specs(1))
	orig, _ := s.Request("w1", time.Second)
	clk.Advance(time.Minute)
	if n := s.Speculate(); n != 1 {
		t.Fatalf("speculate = %d, want 1", n)
	}
	dup, _ := s.Request("w2", time.Second)
	if dup == nil || dup.ID != orig.ID {
		t.Fatalf("duplicate = %+v", dup)
	}
	if err := s.Fail(orig.ID, "w1", "boom"); err != nil {
		t.Fatal(err)
	}
	if p, r := s.JobCounts(0); p != 0 || r != 1 {
		t.Fatalf("after twin failure: pending %d running %d, want 0/1", p, r)
	}
	if err := s.Complete(dup.ID, "w2", result(dup)); err != nil {
		t.Fatal(err)
	}
	if res, err := g.Wait(); err != nil || res[0] == nil {
		t.Fatalf("group = %v, %v", res, err)
	}
}

// A lease expiry of one attempt in a speculative race drops only that
// attempt; the twin carries the task.
func TestSpeculativeTwinSurvivesLeaseExpiry(t *testing.T) {
	s, clk, _ := fakeSched(t, 0)
	defer s.Close()
	s.SetSpeculation(SpeculationConfig{SlownessFactor: 2, MinRuntime: time.Millisecond})
	buildSamples(t, s, clk, "w1", 3, 10*time.Millisecond)

	g, _ := s.SubmitGroup(specs(1))
	if orig, _ := s.Request("w1", time.Second); orig == nil {
		t.Fatal("no original assignment")
	}
	clk.Advance(time.Minute)
	s.Speculate()
	dup, _ := s.Request("w2", time.Second)
	if dup == nil {
		t.Fatal("no duplicate")
	}
	// The original attempt is a minute old, the duplicate fresh: a
	// 30s lease reclaims only the original.
	if n := s.RequeueStale(30 * time.Second); n != 1 {
		t.Fatalf("requeued %d attempts, want 1", n)
	}
	if p, r := s.JobCounts(0); p != 0 || r != 1 {
		t.Fatalf("after expiry: pending %d running %d, want 0/1", p, r)
	}
	if err := s.Complete(dup.ID, "w2", result(dup)); err != nil {
		t.Fatal(err)
	}
	if res, err := g.Wait(); err != nil || res[0] == nil {
		t.Fatalf("group = %v, %v", res, err)
	}
}

// Drain returns a node's leases to the front of the queue and counts
// them; the drained node's affinity is forgotten.
func TestDrainReturnsLeasesToQueue(t *testing.T) {
	s, clk, rt := fakeSched(t, 0)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(3))
	a, _ := s.Request("w1", time.Second)
	b, _ := s.Request("w1", time.Second)
	if a == nil || b == nil {
		t.Fatal("missing assignments")
	}
	if got := s.RunningOn("w1"); got != 2 {
		t.Fatalf("RunningOn(w1) = %d, want 2", got)
	}
	if n := s.Drain("w1"); n != 2 {
		t.Fatalf("Drain returned %d leases, want 2", n)
	}
	if got := rt.M().Get(obs.MetricSchedDrainRequeued); got != 2 {
		t.Errorf("%s = %d, want 2", obs.MetricSchedDrainRequeued, got)
	}
	if got := s.RunningOn("w1"); got != 0 {
		t.Fatalf("RunningOn(w1) after drain = %d, want 0", got)
	}
	// All three tasks complete on the surviving node.
	clk.Advance(time.Millisecond)
	for i := 0; i < 3; i++ {
		task, err := s.Request("w2", time.Second)
		if err != nil || task == nil {
			t.Fatalf("post-drain request %d: %v, %v", i, task, err)
		}
		if err := s.Complete(task.ID, "w2", result(task)); err != nil {
			t.Fatal(err)
		}
	}
	if res, err := g.Wait(); err != nil || len(res) != 3 {
		t.Fatalf("group = %v, %v", res, err)
	}
}

// Late reports after JobDone: straggler completions for a dropped job
// are accepted (callback already consumed) or counted, never faulted.
func TestLateReportAfterJobDoneCounted(t *testing.T) {
	s, clk, rt := fakeSched(t, 0)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	task, _ := s.Request("w1", time.Second)
	clk.Advance(time.Millisecond)
	if err := s.Complete(task.ID, "w1", result(task)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	s.JobDone(0)
	// Redelivered task_done for the retired job: counted, ignored.
	if err := s.Complete(task.ID, "w1", result(task)); err != nil {
		t.Fatal(err)
	}
	if got := rt.M().Get(obs.MetricSchedLateReports); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricSchedLateReports, got)
	}
	// A stale failure report is likewise counted.
	if err := s.Fail(task.ID, "w1", "late failure"); err != nil {
		t.Fatal(err)
	}
	if got := rt.M().Get(obs.MetricSchedLateReports); got != 2 {
		t.Errorf("%s = %d, want 2", obs.MetricSchedLateReports, got)
	}
}

// A duplicate still pending when its race resolves is pruned instead
// of being re-dispatched: no slave ever receives a finished task.
func TestPendingDuplicatePrunedAfterWin(t *testing.T) {
	s, clk, _ := fakeSched(t, 0)
	defer s.Close()
	s.SetSpeculation(SpeculationConfig{SlownessFactor: 2, MinRuntime: time.Millisecond})
	buildSamples(t, s, clk, "w1", 3, 10*time.Millisecond)

	g, _ := s.SubmitGroup(specs(1))
	orig, _ := s.Request("w1", time.Second)
	clk.Advance(time.Minute)
	if n := s.Speculate(); n != 1 {
		t.Fatalf("speculate = %d, want 1", n)
	}
	// The original finishes before anyone picks up the duplicate.
	if err := s.Complete(orig.ID, "w1", result(orig)); err != nil {
		t.Fatal(err)
	}
	if res, err := g.Wait(); err != nil || res[0] == nil {
		t.Fatalf("group = %v, %v", res, err)
	}
	// The queued duplicate must be pruned, not handed out.
	if task, _ := s.Request("w2", 0); task != nil {
		t.Fatalf("pruned duplicate was dispatched: %+v", task)
	}
	if p, r := s.JobCounts(0); p != 0 || r != 0 {
		t.Fatalf("pending %d running %d after prune, want 0/0", p, r)
	}
}
