package sched

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
)

func jobSpecs(job core.JobID, n int) []*core.TaskSpec {
	out := make([]*core.TaskSpec, n)
	for i := range out {
		out[i] = &core.TaskSpec{
			Op:        &core.Operation{Kind: core.OpMap, FuncName: "m", Splits: 1, Dataset: 1},
			TaskIndex: i,
			Job:       job,
		}
	}
	return out
}

// A 1-task job submitted behind a 500-task job must complete without
// waiting for the large job to drain: fair share dispatches it at the
// first free slot. Deterministic under a fake clock — no real timers,
// no sleeps.
func TestFairShareSmallJobNotStarved(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	s := NewWithClock(0, clk)
	defer s.Close()

	big, err := s.SubmitGroup(jobSpecs(1, 500))
	if err != nil {
		t.Fatal(err)
	}
	// The fleet is already chewing on the big job when the small one
	// arrives.
	var bigTasks []*Task
	for i := 0; i < 4; i++ {
		task, err := s.Request("w1", time.Second)
		if err != nil || task == nil {
			t.Fatalf("warmup request %d: %v, %v", i, task, err)
		}
		bigTasks = append(bigTasks, task)
	}

	small, err := s.SubmitGroup(jobSpecs(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Next free slot goes to job 2 (inflight/weight 0 beats 4), even
	// though job 1 still has 496 tasks queued ahead of it in time.
	task, err := s.Request("w2", time.Second)
	if err != nil || task == nil {
		t.Fatalf("request: %v, %v", task, err)
	}
	if task.Spec.Job != 2 {
		t.Fatalf("fair share gave out job %d task, want the 1-task job 2", task.Spec.Job)
	}
	if err := s.Complete(task.ID, "w2", result(task)); err != nil {
		t.Fatal(err)
	}
	if _, err := small.Wait(); err != nil {
		t.Fatalf("small job: %v", err)
	}
	if pending, _ := s.JobCounts(1); pending != 496 {
		t.Fatalf("big job drained to %d pending while small job ran, want 496", pending)
	}

	// Drain the big job too (1 worker, no fairness competition left).
	for _, task := range bigTasks {
		if err := s.Complete(task.ID, "w1", result(task)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 496; i++ {
		task, err := s.Request("w1", time.Second)
		if err != nil || task == nil {
			t.Fatalf("drain request %d: %v, %v", i, task, err)
		}
		if err := s.Complete(task.ID, "w1", result(task)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := big.Wait(); err != nil {
		t.Fatalf("big job: %v", err)
	}
}

// Weights skew the share: at weight 3 vs 1, job 1 keeps winning slots
// until its inflight/weight ratio catches up.
func TestFairShareWeights(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	s := NewWithClock(0, clk)
	defer s.Close()
	s.SetJobWeight(1, 3)

	if _, err := s.SubmitGroup(jobSpecs(1, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitGroup(jobSpecs(2, 8)); err != nil {
		t.Fatal(err)
	}
	counts := map[core.JobID]int{}
	for i := 0; i < 4; i++ {
		task, err := s.Request("w1", time.Second)
		if err != nil || task == nil {
			t.Fatalf("request %d: %v, %v", i, task, err)
		}
		counts[task.Spec.Job]++
	}
	// First four slots: job1 (0/3 vs 0/1 tie, job1 registered first and
	// never dispatched), job2 (1/3 vs 0/1), job1 (1/3 vs 1/1), job1
	// (2/3 vs 1/1).
	if counts[1] != 3 || counts[2] != 1 {
		t.Fatalf("weighted split = %v, want job1:3 job2:1", counts)
	}
}

// A slave blacklisted for one job (too many failures there) still
// serves other jobs, and BlacklistedEverywhere only fires when every
// job shuns it.
func TestPerJobBlacklist(t *testing.T) {
	s := New(10)
	defer s.Close()
	s.SetBlacklist(2, func() int { return 2 })

	if _, err := s.SubmitGroup(jobSpecs(1, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitGroup(jobSpecs(2, 2)); err != nil {
		t.Fatal(err)
	}
	// w1 fails two job-1 tasks: blacklisted for job 1, not job 2.
	for i := 0; i < 2; i++ {
		var task *Task
		for {
			tk, err := s.Request("w1", time.Second)
			if err != nil || tk == nil {
				t.Fatalf("request: %v, %v", tk, err)
			}
			if tk.Spec.Job == 1 {
				task = tk
				break
			}
			if err := s.Complete(tk.ID, "w1", result(tk)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Fail(task.ID, "w1", "boom"); err != nil {
			t.Fatal(err)
		}
	}
	if s.BlacklistedEverywhere("w1") {
		t.Fatal("w1 blacklisted everywhere after failing only job 1")
	}
	for i := 0; i < 4; i++ {
		task, err := s.Request("w1", 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if task == nil {
			break // only job-1 work left, which w1 may not take
		}
		if task.Spec.Job == 1 {
			t.Fatalf("blacklisted slave received job 1 task %d", task.Spec.TaskIndex)
		}
		if err := s.Complete(task.ID, "w1", result(task)); err != nil {
			t.Fatal(err)
		}
	}
	// Fail two job-2 tasks as well (from w2's assignments, reported by
	// w1? no — w1 must be the failer): job 2 is already drained by the
	// completions above, so instead verify the other direction: a fresh
	// slave is blacklisted nowhere.
	if s.BlacklistedEverywhere("w2") {
		t.Fatal("fresh slave blacklisted")
	}
}

// JobDone drops a job's scheduling state entirely.
func TestJobDoneDropsState(t *testing.T) {
	s := New(0)
	defer s.Close()
	if _, err := s.SubmitGroup(jobSpecs(1, 1)); err != nil {
		t.Fatal(err)
	}
	task, err := s.Request("w1", time.Second)
	if err != nil || task == nil {
		t.Fatalf("request: %v, %v", task, err)
	}
	if err := s.Complete(task.ID, "w1", result(task)); err != nil {
		t.Fatal(err)
	}
	if got := s.AffinityJob(1, 0); got != "w1" {
		t.Fatalf("affinity = %q, want w1", got)
	}
	s.JobDone(1)
	if got := s.AffinityJob(1, 0); got != "" {
		t.Fatalf("affinity survived JobDone: %q", got)
	}
	if jobs := s.Jobs(); len(jobs) != 0 {
		t.Fatalf("jobs after JobDone: %v", jobs)
	}
}

// Per-job lease overrides the RequeueStale default for that job only.
func TestPerJobLease(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	s := NewWithClock(0, clk)
	defer s.Close()
	s.SetJobLease(2, 1*time.Second)

	if _, err := s.SubmitGroup(jobSpecs(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitGroup(jobSpecs(2, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if task, err := s.Request("w1", time.Second); err != nil || task == nil {
			t.Fatalf("request %d: %v, %v", i, task, err)
		}
	}
	clk.Advance(2 * time.Second)
	// Default lease 10s: only job 2's 1s override has expired.
	if n := s.RequeueStale(10 * time.Second); n != 1 {
		t.Fatalf("requeued %d, want 1 (job 2's short lease)", n)
	}
	if pending, _ := s.JobCounts(2); pending != 1 {
		t.Fatalf("job 2 pending = %d, want its task requeued", pending)
	}
	if pending, running := s.JobCounts(1); pending != 0 || running != 1 {
		t.Fatalf("job 1 = %d pending %d running, want assignment intact", pending, running)
	}
}
