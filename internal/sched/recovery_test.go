package sched

// Recovery-shaped scheduler tests: the contracts master recovery leans
// on. A restarted master re-drives the job's program; tasks whose
// completions were journaled are answered from the journal and never
// reach the scheduler, while the rest are submitted normally. That only
// works if (a) CompleteTask tells the caller exactly which completions
// were accepted (so only those get journaled), and (b) the per-job
// queues it rebuilds behave identically to a never-crashed scheduler's.

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
)

// CompleteTask reports the accepted task's spec; duplicate and stale
// deliveries report nil. This is the filter that keeps at-least-once
// task_done reports from double-counting in the journal.
func TestCompleteTaskReportsAcceptance(t *testing.T) {
	s := New(0)
	defer s.Close()
	if _, err := s.SubmitGroup(specs(1)); err != nil {
		t.Fatal(err)
	}
	task, err := s.Request("w1", time.Second)
	if err != nil || task == nil {
		t.Fatalf("request: %v, %v", task, err)
	}
	spec, err := s.CompleteTask(task.ID, "w1", result(task))
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil || spec.TaskIndex != task.Spec.TaskIndex || spec.Op.Dataset != 1 {
		t.Fatalf("accepted completion reported spec %+v", spec)
	}
	// Redelivery of the same task_done: ignored, and reported as such.
	spec, err = s.CompleteTask(task.ID, "w1", result(task))
	if err != nil {
		t.Fatal(err)
	}
	if spec != nil {
		t.Fatalf("duplicate completion reported spec %+v", spec)
	}
}

// A stale completion from a previous assignee (requeued after its slave
// was presumed dead) is not accepted — the live assignment's completion
// is the one journaled.
func TestCompleteTaskStaleAssigneeNotAccepted(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	s := NewWithClock(0, fc)
	defer s.Close()
	if _, err := s.SubmitGroup(specs(1)); err != nil {
		t.Fatal(err)
	}
	task1, err := s.Request("w1", 0)
	if err != nil || task1 == nil {
		t.Fatalf("request: %v, %v", task1, err)
	}
	// Lease expires; the task is requeued and lands on w2.
	fc.Advance(2 * time.Second)
	s.RequeueStale(time.Second)
	task2, err := s.Request("w2", 0)
	if err != nil || task2 == nil {
		t.Fatalf("request after requeue: %v, %v", task2, err)
	}
	// w1 comes back from the dead and reports: stale, not accepted.
	spec, err := s.CompleteTask(task2.ID, "w1", result(task1))
	if err != nil {
		t.Fatal(err)
	}
	if spec != nil {
		t.Fatalf("stale completion accepted: %+v", spec)
	}
	// The live assignee's completion is the accepted one.
	spec, err = s.CompleteTask(task2.ID, "w2", result(task2))
	if err != nil || spec == nil {
		t.Fatalf("live completion: %+v, %v", spec, err)
	}
}

// A "recovered" scheduler — fresh instance given only the tasks the
// journal says are incomplete — exposes identical queue contents to a
// never-crashed scheduler that completed the same prefix, and never
// re-dispatches a journaled-complete task.
func TestRecoveredQueueMatchesUncrashed(t *testing.T) {
	const total, journaled = 8, 3

	// Never-crashed: submit all 8, complete the first 3.
	fc := clock.NewFake(time.Unix(0, 0))
	live := NewWithClock(0, fc)
	defer live.Close()
	if _, err := live.SubmitGroup(specs(total)); err != nil {
		t.Fatal(err)
	}
	doneIdx := map[int]bool{}
	for i := 0; i < journaled; i++ {
		task, err := live.Request("w1", 0)
		if err != nil || task == nil {
			t.Fatalf("request %d: %v, %v", i, task, err)
		}
		doneIdx[task.Spec.TaskIndex] = true
		if _, err := live.CompleteTask(task.ID, "w1", result(task)); err != nil {
			t.Fatal(err)
		}
	}

	// Recovered: a fresh scheduler sees only the 5 incomplete specs,
	// submitted one by one exactly as a re-driven program would (the
	// master answers the journaled 3 from their manifests).
	rec := NewWithClock(0, clock.NewFake(time.Unix(0, 0)))
	defer rec.Close()
	for _, sp := range specs(total) {
		if doneIdx[sp.TaskIndex] {
			continue
		}
		if _, err := rec.Submit(sp, func(*core.TaskResult, error) {}); err != nil {
			t.Fatal(err)
		}
	}

	lp, lr := live.JobCounts(1)
	rp, rr := rec.JobCounts(1)
	if lp != rp || lr != rr {
		t.Fatalf("queues differ: live %d/%d, recovered %d/%d", lp, lr, rp, rr)
	}

	// Drain the recovered queue: journaled-complete indexes never appear.
	for {
		task, err := rec.Request("w1", 0)
		if err != nil {
			t.Fatal(err)
		}
		if task == nil {
			break
		}
		if doneIdx[task.Spec.TaskIndex] {
			t.Fatalf("journaled-complete task %d re-dispatched", task.Spec.TaskIndex)
		}
		if _, err := rec.CompleteTask(task.ID, "w1", result(task)); err != nil {
			t.Fatal(err)
		}
	}
	if p, r := rec.JobCounts(1); p != 0 || r != 0 {
		t.Fatalf("recovered queue not drained: %d pending, %d running", p, r)
	}
}
