package sched

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
)

func specs(n int) []*core.TaskSpec {
	out := make([]*core.TaskSpec, n)
	for i := range out {
		out[i] = &core.TaskSpec{
			Op:        &core.Operation{Kind: core.OpMap, FuncName: "m", Splits: 1, Dataset: 1},
			TaskIndex: i,
		}
	}
	return out
}

func result(t *Task) *core.TaskResult {
	return &core.TaskResult{Dataset: t.Spec.Op.Dataset, TaskIndex: t.Spec.TaskIndex}
}

func TestBasicFlow(t *testing.T) {
	s := New(0)
	defer s.Close()
	g, err := s.SubmitGroup(specs(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		task, err := s.Request("w1", time.Second)
		if err != nil || task == nil {
			t.Fatalf("request %d: %v, %v", i, task, err)
		}
		if err := s.Complete(task.ID, "w1", result(task)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := g.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r == nil || r.TaskIndex != i {
			t.Errorf("result[%d] = %+v", i, r)
		}
	}
}

func TestEmptyGroup(t *testing.T) {
	s := New(0)
	defer s.Close()
	g, err := s.SubmitGroup(nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := g.Wait()
	if err != nil || len(results) != 0 {
		t.Errorf("empty group: %v, %v", results, err)
	}
}

func TestRequestTimeout(t *testing.T) {
	s := New(0)
	defer s.Close()
	start := time.Now()
	task, err := s.Request("w1", 50*time.Millisecond)
	if err != nil || task != nil {
		t.Fatalf("got %v, %v", task, err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("returned after %v, should have waited ~50ms", elapsed)
	}
}

func TestRequestWakesOnSubmit(t *testing.T) {
	s := New(0)
	defer s.Close()
	got := make(chan *Task, 1)
	go func() {
		task, _ := s.Request("w1", 5*time.Second)
		got <- task
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := s.SubmitGroup(specs(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case task := <-got:
		if task == nil {
			t.Fatal("woken with nil task")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Request did not wake on submit")
	}
}

func TestAffinityPreference(t *testing.T) {
	s := New(0)
	defer s.Close()
	// Round 1: w1 does task 0, w2 does task 1.
	g, _ := s.SubmitGroup(specs(2))
	t0, _ := s.Request("w1", time.Second)
	t1, _ := s.Request("w2", time.Second)
	s.Complete(t0.ID, "w1", result(t0))
	s.Complete(t1.ID, "w2", result(t1))
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if s.Affinity(t0.Spec.TaskIndex) != "w1" {
		t.Errorf("affinity[%d] = %q", t0.Spec.TaskIndex, s.Affinity(t0.Spec.TaskIndex))
	}
	// Round 2 (next iteration): each worker must receive its own index
	// regardless of request order.
	g2, _ := s.SubmitGroup(specs(2))
	r2, _ := s.Request("w2", time.Second) // w2 asks first; must get index 1
	r1, _ := s.Request("w1", time.Second)
	if r2.Spec.TaskIndex != t1.Spec.TaskIndex {
		t.Errorf("w2 got index %d, want %d", r2.Spec.TaskIndex, t1.Spec.TaskIndex)
	}
	if r1.Spec.TaskIndex != t0.Spec.TaskIndex {
		t.Errorf("w1 got index %d, want %d", r1.Spec.TaskIndex, t0.Spec.TaskIndex)
	}
	s.Complete(r1.ID, "w1", result(r1))
	s.Complete(r2.ID, "w2", result(r2))
	if _, err := g2.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAffinityStealing(t *testing.T) {
	// If the preferred slave never asks, another slave takes the task.
	s := New(0)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	t0, _ := s.Request("w1", time.Second)
	s.Complete(t0.ID, "w1", result(t0))
	g.Wait()

	g2, _ := s.SubmitGroup(specs(1))
	stolen, err := s.Request("w2", time.Second)
	if err != nil || stolen == nil {
		t.Fatalf("w2 could not steal: %v, %v", stolen, err)
	}
	s.Complete(stolen.ID, "w2", result(stolen))
	if _, err := g2.Wait(); err != nil {
		t.Fatal(err)
	}
	if s.Affinity(0) != "w2" {
		t.Errorf("affinity should move to w2, got %q", s.Affinity(0))
	}
}

func TestFailRetries(t *testing.T) {
	s := New(3)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	// Fail twice, succeed on the third attempt.
	for i := 0; i < 2; i++ {
		task, _ := s.Request("w1", time.Second)
		if task == nil {
			t.Fatalf("attempt %d: no task", i)
		}
		s.Fail(task.ID, "w1", "transient")
	}
	task, _ := s.Request("w2", time.Second)
	if task == nil {
		t.Fatal("no retry offered")
	}
	if task.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", task.Attempts)
	}
	s.Complete(task.ID, "w2", result(task))
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFailExhaustsAttempts(t *testing.T) {
	s := New(2)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	for i := 0; i < 2; i++ {
		task, _ := s.Request("w1", time.Second)
		if task == nil {
			t.Fatalf("attempt %d: no task", i)
		}
		s.Fail(task.ID, "w1", "permanent")
	}
	if _, err := g.Wait(); err == nil {
		t.Fatal("group should fail after max attempts")
	}
}

func TestSlaveDeadRequeues(t *testing.T) {
	s := New(0)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(2))
	a, _ := s.Request("w1", time.Second)
	b, _ := s.Request("w1", time.Second)
	if a == nil || b == nil {
		t.Fatal("no tasks")
	}
	s.SlaveDead("w1")
	if s.Running() != 0 {
		t.Errorf("Running = %d after SlaveDead", s.Running())
	}
	// w2 picks up both.
	for i := 0; i < 2; i++ {
		task, _ := s.Request("w2", time.Second)
		if task == nil {
			t.Fatalf("requeued task %d missing", i)
		}
		s.Complete(task.ID, "w2", result(task))
	}
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSlaveDeadDropsAffinity(t *testing.T) {
	s := New(0)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	task, _ := s.Request("w1", time.Second)
	s.Complete(task.ID, "w1", result(task))
	g.Wait()
	s.SlaveDead("w1")
	if got := s.Affinity(0); got != "" {
		t.Errorf("affinity survives slave death: %q", got)
	}
}

func TestCompleteFromWrongSlave(t *testing.T) {
	s := New(0)
	defer s.Close()
	_, _ = s.SubmitGroup(specs(1))
	task, _ := s.Request("w1", time.Second)
	if err := s.Complete(task.ID, "w2", result(task)); err == nil {
		t.Error("completion from wrong slave accepted")
	}
}

func TestDuplicateCompleteIgnored(t *testing.T) {
	s := New(0)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	task, _ := s.Request("w1", time.Second)
	if err := s.Complete(task.ID, "w1", result(task)); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(task.ID, "w1", result(task)); err != nil {
		t.Errorf("duplicate completion errored: %v", err)
	}
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerDuplicateDone(t *testing.T) {
	// The reassignment race, success flavor: a slave presumed dead is
	// reaped, its task requeued and completed by another slave — then
	// the original slave's task_done arrives. The stale completion must
	// be ignored (not an error), and the second assignee keeps the
	// affinity credit.
	s := New(0)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	task, _ := s.Request("w1", time.Second)
	s.SlaveDead("w1") // requeues the task
	task2, _ := s.Request("w2", time.Second)
	if task2 == nil || task2.ID != task.ID {
		t.Fatalf("task not requeued to w2: %v", task2)
	}
	if err := s.Complete(task2.ID, "w2", result(task2)); err != nil {
		t.Fatal(err)
	}
	// w1 comes back from the dead and reports the same task done.
	if err := s.Complete(task.ID, "w1", result(task)); err != nil {
		t.Errorf("stale completion from past assignee errored: %v", err)
	}
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if s.Affinity(0) != "w2" {
		t.Errorf("affinity = %q, want w2 (the live assignee)", s.Affinity(0))
	}
}

func TestSchedulerFailAfterDone(t *testing.T) {
	// Failure flavor of the same race: the task was requeued and is
	// running on w2 when w1's stale task_failed arrives. It must not
	// disturb w2's live assignment or burn an attempt.
	s := New(2) // tight budget: a spurious burned attempt would abort the group
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	task, _ := s.Request("w1", time.Second)
	s.SlaveDead("w1")
	task2, _ := s.Request("w2", time.Second)
	if task2 == nil || task2.ID != task.ID {
		t.Fatalf("task not requeued to w2: %v", task2)
	}
	if err := s.Fail(task.ID, "w1", "stale failure from zombie"); err != nil {
		t.Errorf("stale failure from past assignee errored: %v", err)
	}
	if s.Running() != 1 {
		t.Fatalf("live assignment disturbed: Running = %d", s.Running())
	}
	if s.FailureCount("w1") != 0 {
		t.Errorf("stale failure counted against w1: %d", s.FailureCount("w1"))
	}
	if err := s.Complete(task2.ID, "w2", result(task2)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	// A completion/failure from a slave that was never assigned the
	// task is still a protocol violation, not staleness.
	g2, _ := s.SubmitGroup(specs(1))
	task3, _ := s.Request("w1", time.Second)
	if err := s.Fail(task3.ID, "w9", "imposter"); err == nil {
		t.Error("failure from never-assigned slave accepted")
	}
	s.Complete(task3.ID, "w1", result(task3))
	g2.Wait()
}

func TestFailureCounting(t *testing.T) {
	s := New(5)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	for i := 0; i < 2; i++ {
		task, _ := s.Request("w1", time.Second)
		s.Fail(task.ID, "w1", "boom")
	}
	if got := s.FailureCount("w1"); got != 2 {
		t.Errorf("FailureCount = %d, want 2", got)
	}
	// Death clears the count: a restarted slave starts fresh.
	s.SlaveDead("w1")
	if got := s.FailureCount("w1"); got != 0 {
		t.Errorf("FailureCount after death = %d, want 0", got)
	}
	task, _ := s.Request("w2", time.Second)
	s.Complete(task.ID, "w2", result(task))
	g.Wait()
}

func TestRequeueStaleReclaimsLostAssignments(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	s := NewWithClock(0, clk)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(2))
	a, _ := s.Request("w1", time.Millisecond)
	clk.Advance(3 * time.Second)
	b, _ := s.Request("w1", time.Millisecond)
	if a == nil || b == nil {
		t.Fatal("no tasks assigned")
	}
	// Only a's lease (3s old) is past a 2s lease; b is fresh.
	if n := s.RequeueStale(2 * time.Second); n != 1 {
		t.Fatalf("RequeueStale = %d, want 1", n)
	}
	if s.Pending() != 1 || s.Running() != 1 {
		t.Fatalf("pending=%d running=%d after requeue", s.Pending(), s.Running())
	}
	// The requeued task goes to w2; a late completion from w1 (whose
	// get_task response we pretended was lost) is stale, not fatal.
	re, _ := s.Request("w2", time.Millisecond)
	if re == nil || re.ID != a.ID {
		t.Fatalf("requeued task not offered: %v", re)
	}
	if err := s.Complete(a.ID, "w1", result(a)); err != nil {
		t.Errorf("late completion after lease requeue errored: %v", err)
	}
	s.Complete(re.ID, "w2", result(re))
	s.Complete(b.ID, "w1", result(b))
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseAbortsGroupsAndRequests(t *testing.T) {
	s := New(0)
	g, _ := s.SubmitGroup(specs(2))
	reqErr := make(chan error, 1)
	go func() {
		_, err := s.Request("w1", 10*time.Second)
		reqErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	// One task running when Close hits.
	task, _ := s.Request("w2", time.Second)
	_ = task
	s.Close()
	if _, err := g.Wait(); err != ErrClosed {
		t.Errorf("group Wait err = %v, want ErrClosed", err)
	}
	select {
	case err := <-reqErr:
		if err != ErrClosed && err != nil {
			t.Errorf("blocked request err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Error("blocked Request not woken by Close")
	}
	if _, err := s.SubmitGroup(specs(1)); err != ErrClosed {
		t.Errorf("submit after close: %v", err)
	}
	s.Close() // idempotent
}

func TestConcurrentWorkers(t *testing.T) {
	s := New(0)
	defer s.Close()
	const tasks = 200
	const workers = 8
	g, _ := s.SubmitGroup(specs(tasks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			for {
				task, err := s.Request(id, 100*time.Millisecond)
				if err != nil || task == nil {
					return
				}
				s.Complete(task.ID, id, result(task))
			}
		}(w)
	}
	results, err := g.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r == nil {
			t.Errorf("missing result %d", i)
		}
	}
	wg.Wait()
	if s.Pending() != 0 || s.Running() != 0 {
		t.Errorf("leftover work: pending=%d running=%d", s.Pending(), s.Running())
	}
}

func TestClearAffinity(t *testing.T) {
	s := New(0)
	defer s.Close()
	g, _ := s.SubmitGroup(specs(1))
	task, _ := s.Request("w1", time.Second)
	s.Complete(task.ID, "w1", result(task))
	g.Wait()
	s.ClearAffinity()
	if s.Affinity(0) != "" {
		t.Error("affinity not cleared")
	}
}
