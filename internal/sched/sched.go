// Package sched implements the master's task scheduler. Slaves pull
// tasks; the scheduler prefers giving a slave the same task index it
// completed in a previous operation ("affinity", §IV-A of the Mrs
// paper: corresponding tasks go to the same processor from one
// iteration to the next, cutting inter-iteration communication), and
// it reassigns tasks when slaves fail or report errors.
//
// The scheduler is hierarchy-agnostic: a "slave" here is any node that
// pulls work — a leaf worker process or a sub-master fronting a whole
// group of workers (internal/submaster). Sub-masters run their own
// sched instance over their children, so the same dispatch, lease,
// retry, and drain machinery operates at every level of the control
// tree.
//
// For Resident-marked tasks (Operation.Resident) there is a stronger
// tier above index affinity: the scheduler remembers which slave's
// resident dataset cache holds each (input dataset, split) pair and
// routes later consumers of that split to it, so iterative workloads
// shuffle their invariant inputs once and then run against warm
// worker-local state. Both tiers are preferences, never reservations —
// a slave that asks for work always gets the best-ranked pending task
// rather than blocking on an owner that may never ask.
//
// The scheduler is multi-job: tasks are queued per job (TaskSpec.Job),
// each job keeps its own affinities, failure counts/blacklist, and
// lease override, and dispatch across jobs is weighted fair share —
// the eligible job with the lowest inflight/weight ratio is served
// first, so concurrent tenants share the fleet without a heavy job
// starving a light one. Single-job callers need not care: everything
// they submit lands in the default job 0 and behaves exactly as the
// single-job scheduler did.
//
// Speculative execution (SetSpeculation/Speculate) re-runs stragglers:
// each completion feeds a per-operation duration sample, and a task
// whose sole attempt has run longer than SlownessFactor times the
// operation's quantile duration is queued again for a second, parallel
// attempt on a different slave. A task may therefore have several
// attempts in flight at once; the first completion wins, losers are
// recorded as "lost speculative race" spans and their late reports are
// absorbed by the same stale-delivery tolerance that already handles
// requeue races. Because operations are deterministic functions of
// their inputs and completion is first-wins-exactly-once, speculation
// never changes job output — only its tail latency.
//
// The submission model is per-task and asynchronous: Submit queues one
// task and fires its completion callback exactly once when the task
// succeeds, exhausts its attempts, or the scheduler closes. Tasks from
// any number of concurrent operations interleave in the pending set,
// which is what lets the pipelined Job driver keep several operations
// in flight at once. SubmitGroup remains as a convenience barrier built
// on top of Submit. Callbacks are always invoked without the scheduler
// lock held.
//
// The scheduler is an instrumentation point of the observability layer
// (internal/obs, docs/OBSERVABILITY.md): SetObserver attaches a runtime
// whose tracer receives an assignment event for every attempt handed
// out (carrying the attempt number and worker, so retries and
// speculative races are visible as parallel spans in a -mrs-trace
// timeline) and a completion event for every outcome, and whose
// metrics count assignments, retries, completions, failures,
// speculative launches/wins, drain requeues, late reports, and
// lease/death requeues alongside pending/running gauges.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultMaxAttempts is how many times a task may be attempted before
// it is reported failed.
const DefaultMaxAttempts = 5

// ErrClosed is returned by blocked calls when the scheduler shuts down.
var ErrClosed = errors.New("sched: scheduler closed")

// TaskID uniquely identifies a task attempt set.
type TaskID int64

// Callback receives a task's final outcome (result or error), exactly
// once, from a goroutine that does not hold the scheduler lock.
type Callback func(*core.TaskResult, error)

// Task is one schedulable unit.
type Task struct {
	ID       TaskID
	Spec     *core.TaskSpec
	Attempts int
	done     Callback
	// assignees lists every slave this task was ever given to, so a
	// completion or failure arriving from a *previous* assignee after
	// the task was reassigned is recognized as stale, not a protocol
	// violation.
	assignees []string
	// queued counts copies of this task currently sitting in a pending
	// queue (0 or 1 in practice: the original submission, a requeued
	// retry, or a speculative duplicate). It keeps a retry from being
	// queued twice when a failure races a pending speculative copy.
	queued int
	// finished flips when the task's callback has been claimed (first
	// completion, final abort, or Close), after which stale pending
	// copies are pruned on sight and never re-dispatched.
	finished bool
}

func (t *Task) wasAssignedTo(slaveID string) bool {
	for _, s := range t.assignees {
		if s == slaveID {
			return true
		}
	}
	return false
}

// Group tracks the tasks of one operation submitted via SubmitGroup.
type Group struct {
	mu        sync.Mutex
	remaining int
	results   []*core.TaskResult // indexed by TaskIndex
	err       error
	done      chan struct{}
}

// Wait blocks until every task in the group completed or the group
// failed; results are indexed by task index.
func (g *Group) Wait() ([]*core.TaskResult, error) {
	<-g.done
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return nil, g.err
	}
	return g.results, nil
}

func (g *Group) record(idx int, res *core.TaskResult, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return // already failed; drop late outcomes
	}
	if err != nil {
		g.err = err
		close(g.done)
		return
	}
	g.results[idx] = res
	g.remaining--
	if g.remaining == 0 {
		close(g.done)
	}
}

// SpeculationConfig tunes straggler re-execution. The zero value
// disables speculation.
type SpeculationConfig struct {
	// SlownessFactor launches a duplicate attempt once a task has run
	// longer than SlownessFactor times the operation's quantile
	// duration (<= 0 disables speculation entirely).
	SlownessFactor float64
	// Quantile of the completed-duration sample the factor multiplies
	// (0 selects the default 0.5, the median).
	Quantile float64
	// MinSamples is how many completed durations an operation needs
	// before its tasks may be speculated (0 selects the default 3):
	// with too few samples the quantile is noise.
	MinSamples int
	// MinRuntime floors the speculation threshold so very short
	// operations don't duplicate every task over scheduling jitter
	// (0 selects the default 100ms).
	MinRuntime time.Duration
}

const (
	defaultSpecQuantile   = 0.5
	defaultSpecMinSamples = 3
	defaultSpecMinRuntime = 100 * time.Millisecond
	// durationSampleCap bounds the per-operation duration history the
	// quantile is computed over; older samples age out.
	durationSampleCap = 256
)

// Scheduler coordinates pending and running tasks across any number of
// concurrent jobs. Every task belongs to a job (its TaskSpec.Job; 0 is
// the default job of single-job runtimes), and each job keeps its own
// pending queue, task-index affinities, per-slave failure counts,
// optional lease override, and fair-share weight. Dispatch is weighted
// fair share: a request is served from the eligible job with the
// lowest inflight/weight ratio (ties to the least recently dispatched
// job), so a 500-task job cannot starve a 1-task job submitted behind
// it.
type Scheduler struct {
	mu          sync.Mutex
	cond        *sync.Cond
	jobs        map[core.JobID]*jobState
	order       []core.JobID // job registration order (tie-break determinism)
	running     map[TaskID]*runningEntry
	nextID      TaskID
	dispatchSeq int64
	maxAttempts int
	// blacklistAfter is the per-job failure threshold after which a
	// slave stops receiving that job's tasks (<= 0 disables).
	blacklistAfter int
	// liveSlaves reports the current fleet size; the blacklist never
	// fires when only one slave is left (nil = always apply).
	liveSlaves func() int
	spec       SpeculationConfig
	clk        clock.Clock
	obs        *obs.Runtime
	closed     bool
}

// jobState is one job's private scheduling state.
type jobState struct {
	id       core.JobID
	weight   int // fair-share weight (>= 1)
	pending  []*Task
	inflight int            // attempts of this job currently assigned
	affinity map[int]string // task index -> last slave to complete it
	// resident maps (input dataset, split) of Resident-marked tasks to
	// the slave whose resident cache holds that split's payload — the
	// slave that last completed such a task. Cache-affinity placement
	// prefers it strictly over plain index affinity; a dead slave's
	// entries are dropped so placement falls back to re-fetch anywhere.
	resident map[residentRef]string
	failures map[string]int // slave -> task failures reported (blacklist input)
	lease    time.Duration  // per-job lease override (0 = scheduler default)
	// durations holds recent completed-attempt wall times per operation
	// (keyed by output dataset id) — the sample the speculation
	// quantile is computed over.
	durations map[int][]time.Duration
	// lastDispatch is the global dispatch sequence number of this job's
	// most recent assignment; fair-share ties go to the smaller value.
	lastDispatch int64
}

// residentRef identifies one resident-cached input split within a job.
type residentRef struct {
	ds    int
	split int
}

// attemptRef is one live assignment of a task to a slave. A task
// normally has exactly one; speculation adds a second racing one.
type attemptRef struct {
	slave       string
	since       time.Time // assignment time, for stale-lease requeue
	number      int       // attempt number (Task.Attempts at assignment)
	speculative bool      // launched as a straggler duplicate
}

type runningEntry struct {
	task     *Task
	attempts []*attemptRef
}

func (e *runningEntry) attemptOf(slaveID string) int {
	for i, a := range e.attempts {
		if a.slave == slaveID {
			return i
		}
	}
	return -1
}

// New returns a scheduler. maxAttempts <= 0 selects the default.
func New(maxAttempts int) *Scheduler {
	return NewWithClock(maxAttempts, clock.Real{})
}

// NewWithClock is New with an injectable clock (deterministic timeout
// and lease tests).
func NewWithClock(maxAttempts int, clk clock.Clock) *Scheduler {
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	if clk == nil {
		clk = clock.Real{}
	}
	s := &Scheduler{
		jobs:        map[core.JobID]*jobState{},
		running:     map[TaskID]*runningEntry{},
		maxAttempts: maxAttempts,
		clk:         clk,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// jobLocked returns the job's scheduling state, creating it on first
// use. Must be called with s.mu held.
func (s *Scheduler) jobLocked(id core.JobID) *jobState {
	j, ok := s.jobs[id]
	if !ok {
		j = &jobState{
			id:        id,
			weight:    1,
			affinity:  map[int]string{},
			resident:  map[residentRef]string{},
			failures:  map[string]int{},
			durations: map[int][]time.Duration{},
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
	return j
}

// SetBlacklist configures the per-job repeat-offender blacklist: a
// slave that reported >= after failures for one job stops receiving
// that job's tasks (it still serves other jobs). liveSlaves reports
// the fleet size so the last live slave is never blacklisted; nil
// applies the threshold unconditionally. after <= 0 disables.
func (s *Scheduler) SetBlacklist(after int, liveSlaves func() int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blacklistAfter = after
	s.liveSlaves = liveSlaves
}

// SetSpeculation configures straggler re-execution (zero
// SlownessFactor disables it). Speculate performs the actual scans;
// the master calls it from its reaper tick.
func (s *Scheduler) SetSpeculation(cfg SpeculationConfig) {
	if cfg.Quantile <= 0 || cfg.Quantile > 1 {
		cfg.Quantile = defaultSpecQuantile
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = defaultSpecMinSamples
	}
	if cfg.MinRuntime <= 0 {
		cfg.MinRuntime = defaultSpecMinRuntime
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spec = cfg
}

// SetJobWeight sets a job's fair-share weight (values < 1 are clamped
// to 1). A job with weight w receives w shares of the fleet relative
// to other jobs' weights.
func (s *Scheduler) SetJobWeight(id core.JobID, weight int) {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobLocked(id).weight = weight
}

// SetJobLease overrides the stale-assignment lease for one job's tasks
// (0 restores the RequeueStale caller's default).
func (s *Scheduler) SetJobLease(id core.JobID, lease time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobLocked(id).lease = lease
}

// SetObserver wires the scheduler into an observability runtime
// (trace assignment/completion events, scheduling counters, and
// pending/running gauges). Call before serving requests.
func (s *Scheduler) SetObserver(rt *obs.Runtime) {
	s.mu.Lock()
	s.obs = rt
	s.mu.Unlock()
	rt.M().SetGauge("mrs_sched_pending", func() int64 { return int64(s.Pending()) })
	rt.M().SetGauge("mrs_sched_running", func() int64 { return int64(s.Running()) })
}

// Submit queues one task. done fires exactly once with the task's
// final outcome: its result, the give-up error after attempts are
// exhausted, or ErrClosed if the scheduler shuts down first. Submit
// never invokes done synchronously.
func (s *Scheduler) Submit(spec *core.TaskSpec, done Callback) (TaskID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.nextID++
	j := s.jobLocked(spec.Job)
	j.pending = append(j.pending, &Task{ID: s.nextID, Spec: spec, done: done, queued: 1})
	s.cond.Broadcast()
	return s.nextID, nil
}

// SubmitGroup queues one task per spec and returns the group handle.
func (s *Scheduler) SubmitGroup(specs []*core.TaskSpec) (*Group, error) {
	g := &Group{
		remaining: len(specs),
		results:   make([]*core.TaskResult, len(specs)),
		done:      make(chan struct{}),
	}
	if len(specs) == 0 {
		close(g.done)
		return g, nil
	}
	for _, spec := range specs {
		idx := spec.TaskIndex
		if _, err := s.Submit(spec, func(res *core.TaskResult, err error) {
			g.record(idx, res, err)
		}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Request returns a task for the slave, blocking up to timeout if none
// is available. A nil task with nil error means the timeout elapsed.
func (s *Scheduler) Request(slaveID string, timeout time.Duration) (*Task, error) {
	t, _, err := s.RequestAttempt(slaveID, timeout)
	return t, err
}

// RequestAttempt is Request also returning the attempt number of the
// assignment it hands out. Callers that encode the assignment for the
// wire must use this number rather than reading Task.Attempts later:
// with speculation a task can be re-assigned concurrently, and the
// field may move under the reader.
func (s *Scheduler) RequestAttempt(slaveID string, timeout time.Duration) (*Task, int, error) {
	deadline := s.clk.Now().Add(timeout)
	timer := s.clk.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, 0, ErrClosed
		}
		if t := s.takeLocked(slaveID); t != nil {
			entry := s.running[t.ID]
			speculative := entry != nil // duplicate of a still-running attempt
			if entry == nil {
				entry = &runningEntry{task: t}
				s.running[t.ID] = entry
			}
			t.Attempts++
			t.assignees = append(t.assignees, slaveID)
			entry.attempts = append(entry.attempts, &attemptRef{
				slave:       slaveID,
				since:       s.clk.Now(),
				number:      t.Attempts,
				speculative: speculative,
			})
			s.obs.T().TaskStarted(t.Spec.TraceID, t.Attempts, slaveID)
			s.obs.M().Add("mrs_sched_assigned_total", 1)
			if t.Attempts > 1 && !speculative {
				s.obs.M().Add("mrs_sched_retries_total", 1)
			}
			return t, t.Attempts, nil
		}
		if !s.clk.Now().Before(deadline) {
			return nil, 0, nil
		}
		s.cond.Wait()
	}
}

// takeLocked picks the best pending task for a slave. Job choice is
// weighted fair share: among jobs with pending work the slave may
// serve (per-job blacklist respected), take from the one with the
// lowest inflight/weight ratio, ties to the job dispatched least
// recently — so a newly submitted small job preempts the dispatch
// rotation of a large one immediately. Within the chosen job the
// preference order is: a Resident task whose cached input this slave
// holds (cache affinity — serving it anywhere else would re-shuffle a
// split already warm in this slave's memory), then a task whose index
// this slave completed before (index affinity), then a task with no
// affinity at all, then FIFO steal of the oldest. Every tier is a
// preference, not a reservation: a slave with nothing of its own still
// takes the oldest pending task, so blacklists, leases, and dead
// caching slaves can never deadlock the queue — the fallback is a cold
// re-fetch.
//
// Two task-level exclusions apply: pending copies of a task whose
// callback already fired (a speculative duplicate outliving its
// winner) are pruned on sight, and a speculative copy of a
// still-running task is never handed to a slave the task already ran
// on — a duplicate of a straggler must land on different hardware. A
// job whose every pending task is excluded for this slave falls
// through to the next job in fair-share order.
func (s *Scheduler) takeLocked(slaveID string) *Task {
	var cands []*jobState
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil || s.jobBlacklistedLocked(j, slaveID) {
			continue
		}
		// Prune copies of tasks that finished while queued.
		live := j.pending[:0]
		for _, t := range j.pending {
			if t.finished {
				t.queued--
				continue
			}
			live = append(live, t)
		}
		j.pending = live
		if len(j.pending) > 0 {
			cands = append(cands, j)
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return fairerLocked(cands[a], cands[b]) })
	for _, pick := range cands {
		best, bestRank := -1, 4
		for i, t := range pick.pending {
			if s.running[t.ID] != nil && t.wasAssignedTo(slaveID) {
				// Speculative duplicate: it exists to race the assignment
				// this slave (or a past one) is already running; give it
				// to someone else. (A plain retry has no running entry
				// and may return to the same slave.)
				continue
			}
			rank := 3
			if owner, has := pick.affinity[t.Spec.TaskIndex]; !has {
				rank = 2
			} else if owner == slaveID {
				rank = 1
			}
			if t.Spec.Op.Resident &&
				pick.resident[residentRef{t.Spec.InputDataset, t.Spec.TaskIndex}] == slaveID {
				rank = 0
			}
			if rank < bestRank {
				best, bestRank = i, rank
				if bestRank == 0 {
					break
				}
			}
		}
		if best < 0 {
			continue
		}
		if bestRank == 0 {
			s.obs.M().Add(obs.MetricSchedResidentPlacements, 1)
		}
		t := pick.pending[best]
		pick.pending = append(pick.pending[:best], pick.pending[best+1:]...)
		t.queued--
		pick.inflight++
		s.dispatchSeq++
		pick.lastDispatch = s.dispatchSeq
		return t
	}
	return nil
}

// fairerLocked reports whether job a has a stronger fair-share claim
// than job b: a lower inflight/weight ratio (compared cross-multiplied
// to stay in integers), ties to the job that was dispatched longer ago.
func fairerLocked(a, b *jobState) bool {
	la := int64(a.inflight) * int64(b.weight)
	lb := int64(b.inflight) * int64(a.weight)
	if la != lb {
		return la < lb
	}
	return a.lastDispatch < b.lastDispatch
}

// jobBlacklistedLocked reports whether the slave is blacklisted for
// this job's tasks: it reported at least blacklistAfter failures for
// the job, and more than one slave is live (a blacklist must never
// idle the whole fleet).
func (s *Scheduler) jobBlacklistedLocked(j *jobState, slaveID string) bool {
	if s.blacklistAfter <= 0 || j.failures[slaveID] < s.blacklistAfter {
		return false
	}
	return s.liveSlaves == nil || s.liveSlaves() > 1
}

// BlacklistedEverywhere reports whether the slave is blacklisted for
// every job the scheduler currently tracks (and there is at least
// one). The master uses it to park a slave's get_task polls instead of
// spinning through requests the scheduler would never serve.
func (s *Scheduler) BlacklistedEverywhere(slaveID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return false
	}
	for _, j := range s.jobs {
		if !s.jobBlacklistedLocked(j, slaveID) {
			return false
		}
	}
	return true
}

// Speculate scans running tasks for stragglers and queues a duplicate
// attempt for each (at most one duplicate per task): a task qualifies
// when it has exactly one live attempt, no copy already pending, and
// that attempt has run longer than SlownessFactor × the operation's
// quantile completed duration (floored at MinRuntime), with at least
// MinSamples completions to quantile over. Returns how many duplicates
// were queued; a no-op unless SetSpeculation enabled speculation. The
// master calls this from its reaper tick, a sub-master from its own.
func (s *Scheduler) Speculate() int {
	s.mu.Lock()
	cfg := s.spec
	if s.closed || cfg.SlownessFactor <= 0 {
		s.mu.Unlock()
		return 0
	}
	now := s.clk.Now()
	n := 0
	for _, entry := range s.running {
		t := entry.task
		if t.finished || t.queued > 0 || len(entry.attempts) != 1 {
			continue
		}
		j := s.jobs[t.Spec.Job]
		if j == nil {
			continue
		}
		samples := j.durations[t.Spec.Op.Dataset]
		if len(samples) < cfg.MinSamples {
			continue
		}
		threshold := time.Duration(float64(quantileDur(samples, cfg.Quantile)) * cfg.SlownessFactor)
		if threshold < cfg.MinRuntime {
			threshold = cfg.MinRuntime
		}
		if now.Sub(entry.attempts[0].since) < threshold {
			continue
		}
		// Queue the duplicate at the tail: fresh work first, straggler
		// insurance when slots are otherwise idle.
		t.queued++
		j.pending = append(j.pending, t)
		n++
		s.obs.M().Add(obs.MetricSchedSpeculative, 1)
	}
	if n > 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	return n
}

// quantileDur returns the q-quantile (nearest-rank) of the samples.
func quantileDur(samples []time.Duration, q float64) time.Duration {
	tmp := append([]time.Duration(nil), samples...)
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	idx := int(q*float64(len(tmp)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// recordDurationLocked appends a completed-attempt wall time to the
// job's per-operation speculation sample, aging out old entries.
func recordDurationLocked(j *jobState, ds int, d time.Duration) {
	samples := append(j.durations[ds], d)
	if len(samples) > durationSampleCap {
		samples = samples[len(samples)-durationSampleCap/2:]
	}
	j.durations[ds] = samples
}

// Complete records a successful task. Duplicate or stale completions —
// the same delivery arriving twice, a previous assignee finishing
// after the task was requeued to another slave, or the loser of a
// speculative race — are counted as late reports and ignored, so the
// control plane tolerates at-least-once delivery.
func (s *Scheduler) Complete(id TaskID, slaveID string, result *core.TaskResult) error {
	_, err := s.CompleteTask(id, slaveID, result)
	return err
}

// CompleteTask is Complete returning the spec of the task the
// completion was accepted for, or nil when it was ignored as a
// duplicate or stale delivery. The master journals only accepted
// completions, so at-least-once reports never double-count in the
// durable state. The first completion wins: if other attempts of the
// task are still in flight (a speculative race), they are released and
// their eventual reports ignored.
func (s *Scheduler) CompleteTask(id TaskID, slaveID string, result *core.TaskResult) (*core.TaskSpec, error) {
	s.mu.Lock()
	entry, ok := s.running[id]
	if !ok {
		// Duplicate completion (e.g. a redelivered task_done, a
		// speculative loser, or the task was reassigned after a
		// presumed-dead slave came back). Count and ignore.
		s.obs.M().Add(obs.MetricSchedLateReports, 1)
		s.mu.Unlock()
		return nil, nil
	}
	idx := entry.attemptOf(slaveID)
	if idx < 0 {
		if entry.task.wasAssignedTo(slaveID) {
			// Stale completion from a previous assignee racing the
			// current one; the live assignment proceeds untouched.
			s.obs.M().Add(obs.MetricSchedLateReports, 1)
			s.mu.Unlock()
			return nil, nil
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("sched: task %d completed by %q but never assigned to it", id, slaveID)
	}
	win := entry.attempts[idx]
	delete(s.running, id)
	entry.task.finished = true
	if j := s.jobs[entry.task.Spec.Job]; j != nil {
		j.inflight -= len(entry.attempts)
		j.affinity[entry.task.Spec.TaskIndex] = slaveID
		if spec := entry.task.Spec; spec.Op.Resident {
			// The completing slave just populated (or refreshed) its
			// resident cache with this input split; steer later
			// consumers of the same split to it.
			j.resident[residentRef{spec.InputDataset, spec.TaskIndex}] = slaveID
		}
		recordDurationLocked(j, entry.task.Spec.Op.Dataset, s.clk.Now().Sub(win.since))
	} else {
		// Straggler completion for a job whose state was already
		// dropped (JobDone): still accepted, but worth counting.
		s.obs.M().Add(obs.MetricSchedLateReports, 1)
	}
	if result != nil {
		// Stamp identity so callers need not echo it over the wire.
		result.TaskIndex = entry.task.Spec.TaskIndex
		result.Dataset = entry.task.Spec.Op.Dataset
	}
	var tm obs.Timing
	if result != nil {
		tm = result.Timing
	}
	s.obs.T().TaskFinished(entry.task.Spec.TraceID, win.number, win.slave, tm, "")
	for i, ref := range entry.attempts {
		if i == idx {
			continue
		}
		// Losers of the speculative race: close their spans so the
		// trace shows where the duplicate work went; their eventual
		// reports will land in the late-report counter.
		s.obs.T().TaskFinished(entry.task.Spec.TraceID, ref.number, ref.slave, obs.Timing{}, "lost speculative race")
	}
	s.obs.M().Add("mrs_sched_completed_total", 1)
	if win.speculative {
		s.obs.M().Add(obs.MetricSchedSpeculativeWins, 1)
	}
	done := entry.task.done
	spec := entry.task.Spec
	s.mu.Unlock()
	done(result, nil)
	return spec, nil
}

// Fail reports a task error from a slave; the task is retried on any
// slave until attempts are exhausted, at which point its callback fires
// with the final error. Stale failures from a previous assignee do not
// disturb the current assignment (the reassignment race: a slave
// presumed dead reports failure for a task already requeued and running
// elsewhere), and a failure of one attempt of a speculative race only
// removes that attempt — the surviving attempt keeps running and no
// retry is queued behind it.
func (s *Scheduler) Fail(id TaskID, slaveID string, taskErr string) error {
	s.mu.Lock()
	entry, ok := s.running[id]
	if !ok {
		s.obs.M().Add(obs.MetricSchedLateReports, 1)
		s.mu.Unlock()
		return nil
	}
	idx := entry.attemptOf(slaveID)
	if idx < 0 {
		if entry.task.wasAssignedTo(slaveID) {
			s.obs.M().Add(obs.MetricSchedLateReports, 1)
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		return fmt.Errorf("sched: task %d failed by %q but never assigned to it", id, slaveID)
	}
	ref := entry.attempts[idx]
	entry.attempts = append(entry.attempts[:idx], entry.attempts[idx+1:]...)
	if j := s.jobs[entry.task.Spec.Job]; j != nil {
		j.inflight--
		j.failures[slaveID]++
	}
	s.obs.T().TaskFinished(entry.task.Spec.TraceID, ref.number, ref.slave, obs.Timing{}, taskErr)
	s.obs.M().Add("mrs_sched_task_failures_total", 1)
	if len(entry.attempts) > 0 {
		// A speculative twin is still running; it is the retry.
		s.mu.Unlock()
		return nil
	}
	delete(s.running, id)
	abort := s.requeueOrAbortLocked(entry.task, fmt.Errorf("sched: task %d failed on %s: %s", id, slaveID, taskErr))
	s.mu.Unlock()
	if abort != nil {
		abort()
	}
	return nil
}

// FailureCount returns how many task failures the slave has reported,
// summed across jobs — the input to the master's repeat-offender
// blacklist (and, per job, to the scheduler's own per-job blacklist).
func (s *Scheduler) FailureCount(slaveID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		n += j.failures[slaveID]
	}
	return n
}

// RequeueStale requeues every attempt that has been running longer
// than its lease — the given default, or the task's job's override —
// reclaiming assignments whose delivery was lost (the get_task
// response never reached the slave). An expired attempt of a
// speculative race is simply dropped; the surviving attempt carries
// on. Returns how many attempts were reclaimed.
func (s *Scheduler) RequeueStale(lease time.Duration) int {
	s.mu.Lock()
	now := s.clk.Now()
	n := 0
	var aborts []func()
	for id, entry := range s.running {
		effective := lease
		if j := s.jobs[entry.task.Spec.Job]; j != nil && j.lease > 0 {
			effective = j.lease
		}
		live := entry.attempts[:0]
		for _, ref := range entry.attempts {
			if now.Sub(ref.since) < effective {
				live = append(live, ref)
				continue
			}
			if j := s.jobs[entry.task.Spec.Job]; j != nil {
				j.inflight--
			}
			n++
			s.obs.T().TaskFinished(entry.task.Spec.TraceID, ref.number, ref.slave, obs.Timing{}, "lease expired; requeued")
			s.obs.M().Add("mrs_sched_requeued_total", 1)
		}
		expired := len(entry.attempts) - len(live)
		entry.attempts = live
		if expired == 0 || len(live) > 0 {
			continue
		}
		delete(s.running, id)
		if abort := s.requeueOrAbortLocked(entry.task, fmt.Errorf("sched: task %d lease expired (assignment lost?)", id)); abort != nil {
			aborts = append(aborts, abort)
		}
	}
	s.mu.Unlock()
	for _, abort := range aborts {
		abort()
	}
	return n
}

// SlaveDead requeues every task running on the slave and drops its
// affinities so future preferences don't point at a corpse.
func (s *Scheduler) SlaveDead(slaveID string) {
	s.mu.Lock()
	aborts, _ := s.evictSlaveLocked(slaveID, "slave died; requeued", "mrs_sched_requeued_total")
	s.forgetSlaveLocked(slaveID)
	s.mu.Unlock()
	for _, abort := range aborts {
		abort()
	}
}

// Drain cleanly takes a live node out of rotation: every lease it
// holds is returned to the front of its job's queue for immediate
// re-dispatch elsewhere, and its affinities are dropped so no future
// placement prefers it. Unlike SlaveDead this is the voluntary-exit
// path — the elasticity half of the control plane — but it reuses the
// same requeue machinery, so a drain is exactly a death the node got
// to announce. Returns how many leases were returned.
func (s *Scheduler) Drain(slaveID string) int {
	s.mu.Lock()
	aborts, evicted := s.evictSlaveLocked(slaveID, "node draining; requeued", obs.MetricSchedDrainRequeued)
	s.forgetSlaveLocked(slaveID)
	s.mu.Unlock()
	for _, abort := range aborts {
		abort()
	}
	return evicted
}

// evictSlaveLocked removes every attempt the slave holds, requeueing
// tasks left with no live attempt. Returns the abort callbacks to run
// after unlock and the count of evicted attempts (an evicted attempt
// whose task retries is not an abort, so the counts differ).
func (s *Scheduler) evictSlaveLocked(slaveID, reason, metric string) ([]func(), int) {
	var aborts []func()
	evicted := 0
	for id, entry := range s.running {
		idx := entry.attemptOf(slaveID)
		if idx < 0 {
			continue
		}
		ref := entry.attempts[idx]
		entry.attempts = append(entry.attempts[:idx], entry.attempts[idx+1:]...)
		if j := s.jobs[entry.task.Spec.Job]; j != nil {
			j.inflight--
		}
		evicted++
		s.obs.T().TaskFinished(entry.task.Spec.TraceID, ref.number, ref.slave, obs.Timing{}, reason)
		s.obs.M().Add(metric, 1)
		if len(entry.attempts) > 0 {
			continue // speculative twin still running elsewhere
		}
		delete(s.running, id)
		if abort := s.requeueOrAbortLocked(entry.task, fmt.Errorf("sched: node %s evicted running task %d (%s)", slaveID, id, reason)); abort != nil {
			aborts = append(aborts, abort)
		}
	}
	return aborts, evicted
}

// forgetSlaveLocked drops every preference pointing at the slave.
func (s *Scheduler) forgetSlaveLocked(slaveID string) {
	for _, j := range s.jobs {
		for idx, owner := range j.affinity {
			if owner == slaveID {
				delete(j.affinity, idx)
			}
		}
		for ref, owner := range j.resident {
			if owner == slaveID {
				// The cache died with the slave; placement falls back
				// to a cold re-fetch wherever the retry lands.
				delete(j.resident, ref)
			}
		}
		delete(j.failures, slaveID)
	}
}

// requeueOrAbortLocked retries a task, or — attempts exhausted —
// returns the give-up call for the caller to fire once the lock is
// released.
func (s *Scheduler) requeueOrAbortLocked(t *Task, cause error) func() {
	if t.finished {
		return nil // callback already claimed elsewhere
	}
	if t.queued > 0 {
		// A pending copy (a speculative duplicate queued before the
		// live attempt was lost) already exists; it is the retry.
		s.cond.Broadcast()
		return nil
	}
	if t.Attempts >= s.maxAttempts {
		t.finished = true
		err := fmt.Errorf("sched: giving up after %d attempts: %w", t.Attempts, cause)
		done := t.done
		return func() { done(nil, err) }
	}
	// Retry: push to the front of its job's queue so recovery happens
	// before that job's new work.
	j := s.jobLocked(t.Spec.Job)
	t.queued++
	j.pending = append([]*Task{t}, j.pending...)
	s.cond.Broadcast()
	return nil
}

// Pending returns the number of queued tasks across all jobs
// (diagnostics; speculative duplicates count while queued).
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		n += len(j.pending)
	}
	return n
}

// Running returns the number of in-flight tasks across all jobs
// (diagnostics; a task with two racing attempts counts once).
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.running)
}

// RunningOn returns how many attempts the slave currently holds
// (diagnostics, drain decisions, and tests).
func (s *Scheduler) RunningOn(slaveID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, entry := range s.running {
		if entry.attemptOf(slaveID) >= 0 {
			n++
		}
	}
	return n
}

// Jobs returns the ids of every job the scheduler tracks, in
// registration order.
func (s *Scheduler) Jobs() []core.JobID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]core.JobID, 0, len(s.order))
	for _, id := range s.order {
		if _, ok := s.jobs[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// JobCounts returns one job's queued and in-flight task counts.
func (s *Scheduler) JobCounts(id core.JobID) (pending, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return 0, 0
	}
	return len(j.pending), j.inflight
}

// JobDone drops a completed job's scheduling state (queues, affinity,
// failure counts, duration samples, weight). The job's driver has
// already drained its tasks by the time this is called; any straggler
// completions for a dropped job are still accepted — they just skip
// per-job bookkeeping and tick the mrs_sched_late_reports_total
// counter instead of vanishing silently.
func (s *Scheduler) JobDone(id core.JobID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Affinity returns the slave last known to have completed task index
// idx of the default job ("" if none); exposed for the affinity
// ablation bench.
func (s *Scheduler) Affinity(idx int) string {
	return s.AffinityJob(0, idx)
}

// AffinityJob is Affinity for a specific job's task index.
func (s *Scheduler) AffinityJob(job core.JobID, idx int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[job]
	if !ok {
		return ""
	}
	return j.affinity[idx]
}

// ClearAffinity erases affinity state — index and resident alike — for
// every job (ablation support).
func (s *Scheduler) ClearAffinity() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.affinity = map[int]string{}
		j.resident = map[residentRef]string{}
	}
}

// ResidentOwner returns the slave whose resident cache is believed to
// hold (input dataset ds, split) of the job, or "" if none is recorded.
func (s *Scheduler) ResidentOwner(job core.JobID, ds, split int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[job]
	if !ok {
		return ""
	}
	return j.resident[residentRef{ds, split}]
}

// Close aborts all queued and running tasks (their callbacks fire with
// ErrClosed) and wakes all blocked requests. A task queued *and*
// running (a speculative duplicate) fires once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var dones []Callback
	for _, j := range s.jobs {
		for _, t := range j.pending {
			if t.finished {
				continue
			}
			t.finished = true
			dones = append(dones, t.done)
		}
		j.pending = nil
		j.inflight = 0
	}
	for _, e := range s.running {
		if e.task.finished {
			continue
		}
		e.task.finished = true
		dones = append(dones, e.task.done)
	}
	s.running = map[TaskID]*runningEntry{}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, done := range dones {
		done(nil, ErrClosed)
	}
}
