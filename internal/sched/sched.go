// Package sched implements the master's task scheduler. Slaves pull
// tasks; the scheduler prefers giving a slave the same task index it
// completed in a previous operation ("affinity", §IV-A of the Mrs
// paper: corresponding tasks go to the same processor from one
// iteration to the next, cutting inter-iteration communication), and
// it reassigns tasks when slaves fail or report errors.
//
// For Resident-marked tasks (Operation.Resident) there is a stronger
// tier above index affinity: the scheduler remembers which slave's
// resident dataset cache holds each (input dataset, split) pair and
// routes later consumers of that split to it, so iterative workloads
// shuffle their invariant inputs once and then run against warm
// worker-local state. Both tiers are preferences, never reservations —
// a slave that asks for work always gets the best-ranked pending task
// rather than blocking on an owner that may never ask.
//
// The scheduler is multi-job: tasks are queued per job (TaskSpec.Job),
// each job keeps its own affinities, failure counts/blacklist, and
// lease override, and dispatch across jobs is weighted fair share —
// the eligible job with the lowest inflight/weight ratio is served
// first, so concurrent tenants share the fleet without a heavy job
// starving a light one. Single-job callers need not care: everything
// they submit lands in the default job 0 and behaves exactly as the
// single-job scheduler did.
//
// The submission model is per-task and asynchronous: Submit queues one
// task and fires its completion callback exactly once when the task
// succeeds, exhausts its attempts, or the scheduler closes. Tasks from
// any number of concurrent operations interleave in the pending set,
// which is what lets the pipelined Job driver keep several operations
// in flight at once. SubmitGroup remains as a convenience barrier built
// on top of Submit. Callbacks are always invoked without the scheduler
// lock held.
//
// The scheduler is an instrumentation point of the observability layer
// (internal/obs, docs/OBSERVABILITY.md): SetObserver attaches a runtime
// whose tracer receives an assignment event for every attempt handed
// out (carrying the attempt number, so retries are visible as attempt>1
// spans in a -mrs-trace timeline) and a completion event for every
// outcome, and whose metrics count assignments, retries, completions,
// failures, and lease/death requeues alongside pending/running gauges.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultMaxAttempts is how many times a task may be attempted before
// it is reported failed.
const DefaultMaxAttempts = 5

// ErrClosed is returned by blocked calls when the scheduler shuts down.
var ErrClosed = errors.New("sched: scheduler closed")

// TaskID uniquely identifies a task attempt set.
type TaskID int64

// Callback receives a task's final outcome (result or error), exactly
// once, from a goroutine that does not hold the scheduler lock.
type Callback func(*core.TaskResult, error)

// Task is one schedulable unit.
type Task struct {
	ID       TaskID
	Spec     *core.TaskSpec
	Attempts int
	done     Callback
	// assignees lists every slave this task was ever given to, so a
	// completion or failure arriving from a *previous* assignee after
	// the task was reassigned is recognized as stale, not a protocol
	// violation.
	assignees []string
}

func (t *Task) wasAssignedTo(slaveID string) bool {
	for _, s := range t.assignees {
		if s == slaveID {
			return true
		}
	}
	return false
}

// Group tracks the tasks of one operation submitted via SubmitGroup.
type Group struct {
	mu        sync.Mutex
	remaining int
	results   []*core.TaskResult // indexed by TaskIndex
	err       error
	done      chan struct{}
}

// Wait blocks until every task in the group completed or the group
// failed; results are indexed by task index.
func (g *Group) Wait() ([]*core.TaskResult, error) {
	<-g.done
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return nil, g.err
	}
	return g.results, nil
}

func (g *Group) record(idx int, res *core.TaskResult, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return // already failed; drop late outcomes
	}
	if err != nil {
		g.err = err
		close(g.done)
		return
	}
	g.results[idx] = res
	g.remaining--
	if g.remaining == 0 {
		close(g.done)
	}
}

// Scheduler coordinates pending and running tasks across any number of
// concurrent jobs. Every task belongs to a job (its TaskSpec.Job; 0 is
// the default job of single-job runtimes), and each job keeps its own
// pending queue, task-index affinities, per-slave failure counts,
// optional lease override, and fair-share weight. Dispatch is weighted
// fair share: a request is served from the eligible job with the
// lowest inflight/weight ratio (ties to the least recently dispatched
// job), so a 500-task job cannot starve a 1-task job submitted behind
// it.
type Scheduler struct {
	mu          sync.Mutex
	cond        *sync.Cond
	jobs        map[core.JobID]*jobState
	order       []core.JobID // job registration order (tie-break determinism)
	running     map[TaskID]*runningEntry
	nextID      TaskID
	dispatchSeq int64
	maxAttempts int
	// blacklistAfter is the per-job failure threshold after which a
	// slave stops receiving that job's tasks (<= 0 disables).
	blacklistAfter int
	// liveSlaves reports the current fleet size; the blacklist never
	// fires when only one slave is left (nil = always apply).
	liveSlaves func() int
	clk        clock.Clock
	obs        *obs.Runtime
	closed     bool
}

// jobState is one job's private scheduling state.
type jobState struct {
	id       core.JobID
	weight   int // fair-share weight (>= 1)
	pending  []*Task
	inflight int            // tasks of this job currently assigned
	affinity map[int]string // task index -> last slave to complete it
	// resident maps (input dataset, split) of Resident-marked tasks to
	// the slave whose resident cache holds that split's payload — the
	// slave that last completed such a task. Cache-affinity placement
	// prefers it strictly over plain index affinity; a dead slave's
	// entries are dropped so placement falls back to re-fetch anywhere.
	resident map[residentRef]string
	failures map[string]int // slave -> task failures reported (blacklist input)
	lease    time.Duration  // per-job lease override (0 = scheduler default)
	// lastDispatch is the global dispatch sequence number of this job's
	// most recent assignment; fair-share ties go to the smaller value.
	lastDispatch int64
}

// residentRef identifies one resident-cached input split within a job.
type residentRef struct {
	ds    int
	split int
}

type runningEntry struct {
	task  *Task
	slave string
	since time.Time // assignment time, for stale-lease requeue
}

// New returns a scheduler. maxAttempts <= 0 selects the default.
func New(maxAttempts int) *Scheduler {
	return NewWithClock(maxAttempts, clock.Real{})
}

// NewWithClock is New with an injectable clock (deterministic timeout
// and lease tests).
func NewWithClock(maxAttempts int, clk clock.Clock) *Scheduler {
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	if clk == nil {
		clk = clock.Real{}
	}
	s := &Scheduler{
		jobs:        map[core.JobID]*jobState{},
		running:     map[TaskID]*runningEntry{},
		maxAttempts: maxAttempts,
		clk:         clk,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// jobLocked returns the job's scheduling state, creating it on first
// use. Must be called with s.mu held.
func (s *Scheduler) jobLocked(id core.JobID) *jobState {
	j, ok := s.jobs[id]
	if !ok {
		j = &jobState{
			id:       id,
			weight:   1,
			affinity: map[int]string{},
			resident: map[residentRef]string{},
			failures: map[string]int{},
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
	return j
}

// SetBlacklist configures the per-job repeat-offender blacklist: a
// slave that reported >= after failures for one job stops receiving
// that job's tasks (it still serves other jobs). liveSlaves reports
// the fleet size so the last live slave is never blacklisted; nil
// applies the threshold unconditionally. after <= 0 disables.
func (s *Scheduler) SetBlacklist(after int, liveSlaves func() int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blacklistAfter = after
	s.liveSlaves = liveSlaves
}

// SetJobWeight sets a job's fair-share weight (values < 1 are clamped
// to 1). A job with weight w receives w shares of the fleet relative
// to other jobs' weights.
func (s *Scheduler) SetJobWeight(id core.JobID, weight int) {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobLocked(id).weight = weight
}

// SetJobLease overrides the stale-assignment lease for one job's tasks
// (0 restores the RequeueStale caller's default).
func (s *Scheduler) SetJobLease(id core.JobID, lease time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobLocked(id).lease = lease
}

// SetObserver wires the scheduler into an observability runtime
// (trace assignment/completion events, scheduling counters, and
// pending/running gauges). Call before serving requests.
func (s *Scheduler) SetObserver(rt *obs.Runtime) {
	s.mu.Lock()
	s.obs = rt
	s.mu.Unlock()
	rt.M().SetGauge("mrs_sched_pending", func() int64 { return int64(s.Pending()) })
	rt.M().SetGauge("mrs_sched_running", func() int64 { return int64(s.Running()) })
}

// Submit queues one task. done fires exactly once with the task's
// final outcome: its result, the give-up error after attempts are
// exhausted, or ErrClosed if the scheduler shuts down first. Submit
// never invokes done synchronously.
func (s *Scheduler) Submit(spec *core.TaskSpec, done Callback) (TaskID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.nextID++
	j := s.jobLocked(spec.Job)
	j.pending = append(j.pending, &Task{ID: s.nextID, Spec: spec, done: done})
	s.cond.Broadcast()
	return s.nextID, nil
}

// SubmitGroup queues one task per spec and returns the group handle.
func (s *Scheduler) SubmitGroup(specs []*core.TaskSpec) (*Group, error) {
	g := &Group{
		remaining: len(specs),
		results:   make([]*core.TaskResult, len(specs)),
		done:      make(chan struct{}),
	}
	if len(specs) == 0 {
		close(g.done)
		return g, nil
	}
	for _, spec := range specs {
		idx := spec.TaskIndex
		if _, err := s.Submit(spec, func(res *core.TaskResult, err error) {
			g.record(idx, res, err)
		}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Request returns a task for the slave, blocking up to timeout if none
// is available. A nil task with nil error means the timeout elapsed.
func (s *Scheduler) Request(slaveID string, timeout time.Duration) (*Task, error) {
	deadline := s.clk.Now().Add(timeout)
	timer := s.clk.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, ErrClosed
		}
		if t := s.takeLocked(slaveID); t != nil {
			s.running[t.ID] = &runningEntry{task: t, slave: slaveID, since: s.clk.Now()}
			t.Attempts++
			t.assignees = append(t.assignees, slaveID)
			s.obs.T().TaskStarted(t.Spec.TraceID, t.Attempts, slaveID)
			s.obs.M().Add("mrs_sched_assigned_total", 1)
			if t.Attempts > 1 {
				s.obs.M().Add("mrs_sched_retries_total", 1)
			}
			return t, nil
		}
		if !s.clk.Now().Before(deadline) {
			return nil, nil
		}
		s.cond.Wait()
	}
}

// takeLocked picks the best pending task for a slave. Job choice is
// weighted fair share: among jobs with pending work the slave may
// serve (per-job blacklist respected), take the one with the lowest
// inflight/weight ratio, ties to the job dispatched least recently —
// so a newly submitted small job preempts the dispatch rotation of a
// large one immediately. Within the chosen job the preference order
// is: a Resident task whose cached input this slave holds (cache
// affinity — serving it anywhere else would re-shuffle a split already
// warm in this slave's memory), then a task whose index this slave
// completed before (index affinity), then a task with no affinity at
// all, then FIFO steal of the oldest. Every tier is a preference, not
// a reservation: a slave with nothing of its own still takes the
// oldest pending task, so blacklists, leases, and dead caching slaves
// can never deadlock the queue — the fallback is a cold re-fetch.
func (s *Scheduler) takeLocked(slaveID string) *Task {
	var pick *jobState
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil || len(j.pending) == 0 || s.jobBlacklistedLocked(j, slaveID) {
			continue
		}
		if pick == nil || fairerLocked(j, pick) {
			pick = j
		}
	}
	if pick == nil {
		return nil
	}
	best, bestRank := 0, 4
	for i, t := range pick.pending {
		rank := 3
		if owner, has := pick.affinity[t.Spec.TaskIndex]; !has {
			rank = 2
		} else if owner == slaveID {
			rank = 1
		}
		if t.Spec.Op.Resident &&
			pick.resident[residentRef{t.Spec.InputDataset, t.Spec.TaskIndex}] == slaveID {
			rank = 0
		}
		if rank < bestRank {
			best, bestRank = i, rank
			if bestRank == 0 {
				break
			}
		}
	}
	if bestRank == 0 {
		s.obs.M().Add(obs.MetricSchedResidentPlacements, 1)
	}
	t := pick.pending[best]
	pick.pending = append(pick.pending[:best], pick.pending[best+1:]...)
	pick.inflight++
	s.dispatchSeq++
	pick.lastDispatch = s.dispatchSeq
	return t
}

// fairerLocked reports whether job a has a stronger fair-share claim
// than job b: a lower inflight/weight ratio (compared cross-multiplied
// to stay in integers), ties to the job that was dispatched longer ago.
func fairerLocked(a, b *jobState) bool {
	la := int64(a.inflight) * int64(b.weight)
	lb := int64(b.inflight) * int64(a.weight)
	if la != lb {
		return la < lb
	}
	return a.lastDispatch < b.lastDispatch
}

// jobBlacklistedLocked reports whether the slave is blacklisted for
// this job's tasks: it reported at least blacklistAfter failures for
// the job, and more than one slave is live (a blacklist must never
// idle the whole fleet).
func (s *Scheduler) jobBlacklistedLocked(j *jobState, slaveID string) bool {
	if s.blacklistAfter <= 0 || j.failures[slaveID] < s.blacklistAfter {
		return false
	}
	return s.liveSlaves == nil || s.liveSlaves() > 1
}

// BlacklistedEverywhere reports whether the slave is blacklisted for
// every job the scheduler currently tracks (and there is at least
// one). The master uses it to park a slave's get_task polls instead of
// spinning through requests the scheduler would never serve.
func (s *Scheduler) BlacklistedEverywhere(slaveID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return false
	}
	for _, j := range s.jobs {
		if !s.jobBlacklistedLocked(j, slaveID) {
			return false
		}
	}
	return true
}

// Complete records a successful task. Duplicate or stale completions —
// the same delivery arriving twice, or a previous assignee finishing
// after the task was requeued to another slave — are ignored, so the
// control plane tolerates at-least-once delivery.
func (s *Scheduler) Complete(id TaskID, slaveID string, result *core.TaskResult) error {
	_, err := s.CompleteTask(id, slaveID, result)
	return err
}

// CompleteTask is Complete returning the spec of the task the
// completion was accepted for, or nil when it was ignored as a
// duplicate or stale delivery. The master journals only accepted
// completions, so at-least-once reports never double-count in the
// durable state.
func (s *Scheduler) CompleteTask(id TaskID, slaveID string, result *core.TaskResult) (*core.TaskSpec, error) {
	s.mu.Lock()
	entry, ok := s.running[id]
	if !ok {
		// Duplicate completion (e.g. a redelivered task_done, or the
		// task was reassigned after a presumed-dead slave came back).
		// Ignore.
		s.mu.Unlock()
		return nil, nil
	}
	if entry.slave != slaveID {
		if entry.task.wasAssignedTo(slaveID) {
			// Stale completion from a previous assignee racing the
			// current one; the live assignment proceeds untouched.
			s.mu.Unlock()
			return nil, nil
		}
		s.mu.Unlock()
		return nil, fmt.Errorf("sched: task %d completed by %q but assigned to %q", id, slaveID, entry.slave)
	}
	delete(s.running, id)
	if j := s.jobs[entry.task.Spec.Job]; j != nil {
		j.inflight--
		j.affinity[entry.task.Spec.TaskIndex] = slaveID
		if spec := entry.task.Spec; spec.Op.Resident {
			// The completing slave just populated (or refreshed) its
			// resident cache with this input split; steer later
			// consumers of the same split to it.
			j.resident[residentRef{spec.InputDataset, spec.TaskIndex}] = slaveID
		}
	}
	if result != nil {
		// Stamp identity so callers need not echo it over the wire.
		result.TaskIndex = entry.task.Spec.TaskIndex
		result.Dataset = entry.task.Spec.Op.Dataset
	}
	var tm obs.Timing
	if result != nil {
		tm = result.Timing
	}
	s.obs.T().TaskFinished(entry.task.Spec.TraceID, entry.task.Attempts, tm, "")
	s.obs.M().Add("mrs_sched_completed_total", 1)
	done := entry.task.done
	spec := entry.task.Spec
	s.mu.Unlock()
	done(result, nil)
	return spec, nil
}

// Fail reports a task error from a slave; the task is retried on any
// slave until attempts are exhausted, at which point its callback fires
// with the final error. Stale failures from a previous assignee do not
// disturb the current assignment (the reassignment race: a slave
// presumed dead reports failure for a task already requeued and running
// elsewhere).
func (s *Scheduler) Fail(id TaskID, slaveID string, taskErr string) error {
	s.mu.Lock()
	entry, ok := s.running[id]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	if entry.slave != slaveID {
		if entry.task.wasAssignedTo(slaveID) {
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		return fmt.Errorf("sched: task %d failed by %q but assigned to %q", id, slaveID, entry.slave)
	}
	delete(s.running, id)
	if j := s.jobs[entry.task.Spec.Job]; j != nil {
		j.inflight--
		j.failures[slaveID]++
	}
	s.obs.T().TaskFinished(entry.task.Spec.TraceID, entry.task.Attempts, obs.Timing{}, taskErr)
	s.obs.M().Add("mrs_sched_task_failures_total", 1)
	abort := s.requeueOrAbortLocked(entry.task, fmt.Errorf("sched: task %d failed on %s: %s", id, slaveID, taskErr))
	s.mu.Unlock()
	if abort != nil {
		abort()
	}
	return nil
}

// FailureCount returns how many task failures the slave has reported,
// summed across jobs — the input to the master's repeat-offender
// blacklist (and, per job, to the scheduler's own per-job blacklist).
func (s *Scheduler) FailureCount(slaveID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		n += j.failures[slaveID]
	}
	return n
}

// RequeueStale requeues every task that has been running longer than
// its lease — the given default, or the task's job's override —
// reclaiming assignments whose delivery was lost (the get_task
// response never reached the slave). Returns how many were requeued.
func (s *Scheduler) RequeueStale(lease time.Duration) int {
	s.mu.Lock()
	now := s.clk.Now()
	n := 0
	var aborts []func()
	for id, entry := range s.running {
		effective := lease
		if j := s.jobs[entry.task.Spec.Job]; j != nil && j.lease > 0 {
			effective = j.lease
		}
		if now.Sub(entry.since) < effective {
			continue
		}
		delete(s.running, id)
		if j := s.jobs[entry.task.Spec.Job]; j != nil {
			j.inflight--
		}
		n++
		s.obs.T().TaskFinished(entry.task.Spec.TraceID, entry.task.Attempts, obs.Timing{}, "lease expired; requeued")
		s.obs.M().Add("mrs_sched_requeued_total", 1)
		if abort := s.requeueOrAbortLocked(entry.task, fmt.Errorf("sched: task %d leased to %s expired (assignment lost?)", id, entry.slave)); abort != nil {
			aborts = append(aborts, abort)
		}
	}
	s.mu.Unlock()
	for _, abort := range aborts {
		abort()
	}
	return n
}

// SlaveDead requeues every task running on the slave and drops its
// affinities so future preferences don't point at a corpse.
func (s *Scheduler) SlaveDead(slaveID string) {
	s.mu.Lock()
	var aborts []func()
	for id, entry := range s.running {
		if entry.slave != slaveID {
			continue
		}
		delete(s.running, id)
		if j := s.jobs[entry.task.Spec.Job]; j != nil {
			j.inflight--
		}
		s.obs.T().TaskFinished(entry.task.Spec.TraceID, entry.task.Attempts, obs.Timing{}, "slave died; requeued")
		s.obs.M().Add("mrs_sched_requeued_total", 1)
		if abort := s.requeueOrAbortLocked(entry.task, fmt.Errorf("sched: slave %s died running task %d", slaveID, id)); abort != nil {
			aborts = append(aborts, abort)
		}
	}
	for _, j := range s.jobs {
		for idx, owner := range j.affinity {
			if owner == slaveID {
				delete(j.affinity, idx)
			}
		}
		for ref, owner := range j.resident {
			if owner == slaveID {
				// The cache died with the slave; placement falls back
				// to a cold re-fetch wherever the retry lands.
				delete(j.resident, ref)
			}
		}
		delete(j.failures, slaveID)
	}
	s.mu.Unlock()
	for _, abort := range aborts {
		abort()
	}
}

// requeueOrAbortLocked retries a task, or — attempts exhausted —
// returns the give-up call for the caller to fire once the lock is
// released.
func (s *Scheduler) requeueOrAbortLocked(t *Task, cause error) func() {
	if t.Attempts >= s.maxAttempts {
		err := fmt.Errorf("sched: giving up after %d attempts: %w", t.Attempts, cause)
		done := t.done
		return func() { done(nil, err) }
	}
	// Retry: push to the front of its job's queue so recovery happens
	// before that job's new work.
	j := s.jobLocked(t.Spec.Job)
	j.pending = append([]*Task{t}, j.pending...)
	s.cond.Broadcast()
	return nil
}

// Pending returns the number of queued tasks across all jobs
// (diagnostics).
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		n += len(j.pending)
	}
	return n
}

// Running returns the number of in-flight tasks across all jobs
// (diagnostics).
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.running)
}

// Jobs returns the ids of every job the scheduler tracks, in
// registration order.
func (s *Scheduler) Jobs() []core.JobID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]core.JobID, 0, len(s.order))
	for _, id := range s.order {
		if _, ok := s.jobs[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// JobCounts returns one job's queued and in-flight task counts.
func (s *Scheduler) JobCounts(id core.JobID) (pending, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return 0, 0
	}
	return len(j.pending), j.inflight
}

// JobDone drops a completed job's scheduling state (queues, affinity,
// failure counts, weight). The job's driver has already drained its
// tasks by the time this is called; any straggler completions for a
// dropped job are still accepted, they just skip per-job bookkeeping.
func (s *Scheduler) JobDone(id core.JobID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Affinity returns the slave last known to have completed task index
// idx of the default job ("" if none); exposed for the affinity
// ablation bench.
func (s *Scheduler) Affinity(idx int) string {
	return s.AffinityJob(0, idx)
}

// AffinityJob is Affinity for a specific job's task index.
func (s *Scheduler) AffinityJob(job core.JobID, idx int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[job]
	if !ok {
		return ""
	}
	return j.affinity[idx]
}

// ClearAffinity erases affinity state — index and resident alike — for
// every job (ablation support).
func (s *Scheduler) ClearAffinity() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.affinity = map[int]string{}
		j.resident = map[residentRef]string{}
	}
}

// ResidentOwner returns the slave whose resident cache is believed to
// hold (input dataset ds, split) of the job, or "" if none is recorded.
func (s *Scheduler) ResidentOwner(job core.JobID, ds, split int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[job]
	if !ok {
		return ""
	}
	return j.resident[residentRef{ds, split}]
}

// Close aborts all queued and running tasks (their callbacks fire with
// ErrClosed) and wakes all blocked requests.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var dones []Callback
	for _, j := range s.jobs {
		for _, t := range j.pending {
			dones = append(dones, t.done)
		}
		j.pending = nil
		j.inflight = 0
	}
	for _, e := range s.running {
		dones = append(dones, e.task.done)
	}
	s.running = map[TaskID]*runningEntry{}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, done := range dones {
		done(nil, ErrClosed)
	}
}
