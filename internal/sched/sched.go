// Package sched implements the master's task scheduler. Slaves pull
// tasks; the scheduler prefers giving a slave the same task index it
// completed in a previous operation ("affinity", §IV-A of the Mrs
// paper: corresponding tasks go to the same processor from one
// iteration to the next, cutting inter-iteration communication), and
// it reassigns tasks when slaves fail or report errors.
//
// The submission model is per-task and asynchronous: Submit queues one
// task and fires its completion callback exactly once when the task
// succeeds, exhausts its attempts, or the scheduler closes. Tasks from
// any number of concurrent operations interleave in the pending set,
// which is what lets the pipelined Job driver keep several operations
// in flight at once. SubmitGroup remains as a convenience barrier built
// on top of Submit. Callbacks are always invoked without the scheduler
// lock held.
//
// The scheduler is an instrumentation point of the observability layer
// (internal/obs, docs/OBSERVABILITY.md): SetObserver attaches a runtime
// whose tracer receives an assignment event for every attempt handed
// out (carrying the attempt number, so retries are visible as attempt>1
// spans in a -mrs-trace timeline) and a completion event for every
// outcome, and whose metrics count assignments, retries, completions,
// failures, and lease/death requeues alongside pending/running gauges.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultMaxAttempts is how many times a task may be attempted before
// it is reported failed.
const DefaultMaxAttempts = 5

// ErrClosed is returned by blocked calls when the scheduler shuts down.
var ErrClosed = errors.New("sched: scheduler closed")

// TaskID uniquely identifies a task attempt set.
type TaskID int64

// Callback receives a task's final outcome (result or error), exactly
// once, from a goroutine that does not hold the scheduler lock.
type Callback func(*core.TaskResult, error)

// Task is one schedulable unit.
type Task struct {
	ID       TaskID
	Spec     *core.TaskSpec
	Attempts int
	done     Callback
	// assignees lists every slave this task was ever given to, so a
	// completion or failure arriving from a *previous* assignee after
	// the task was reassigned is recognized as stale, not a protocol
	// violation.
	assignees []string
}

func (t *Task) wasAssignedTo(slaveID string) bool {
	for _, s := range t.assignees {
		if s == slaveID {
			return true
		}
	}
	return false
}

// Group tracks the tasks of one operation submitted via SubmitGroup.
type Group struct {
	mu        sync.Mutex
	remaining int
	results   []*core.TaskResult // indexed by TaskIndex
	err       error
	done      chan struct{}
}

// Wait blocks until every task in the group completed or the group
// failed; results are indexed by task index.
func (g *Group) Wait() ([]*core.TaskResult, error) {
	<-g.done
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return nil, g.err
	}
	return g.results, nil
}

func (g *Group) record(idx int, res *core.TaskResult, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return // already failed; drop late outcomes
	}
	if err != nil {
		g.err = err
		close(g.done)
		return
	}
	g.results[idx] = res
	g.remaining--
	if g.remaining == 0 {
		close(g.done)
	}
}

// Scheduler coordinates pending and running tasks.
type Scheduler struct {
	mu          sync.Mutex
	cond        *sync.Cond
	pending     []*Task
	running     map[TaskID]*runningEntry
	affinity    map[int]string // task index -> last slave to complete it
	failures    map[string]int // slave -> task failures reported (blacklist input)
	nextID      TaskID
	maxAttempts int
	clk         clock.Clock
	obs         *obs.Runtime
	closed      bool
}

type runningEntry struct {
	task  *Task
	slave string
	since time.Time // assignment time, for stale-lease requeue
}

// New returns a scheduler. maxAttempts <= 0 selects the default.
func New(maxAttempts int) *Scheduler {
	return NewWithClock(maxAttempts, clock.Real{})
}

// NewWithClock is New with an injectable clock (deterministic timeout
// and lease tests).
func NewWithClock(maxAttempts int, clk clock.Clock) *Scheduler {
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	if clk == nil {
		clk = clock.Real{}
	}
	s := &Scheduler{
		running:     map[TaskID]*runningEntry{},
		affinity:    map[int]string{},
		failures:    map[string]int{},
		maxAttempts: maxAttempts,
		clk:         clk,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetObserver wires the scheduler into an observability runtime
// (trace assignment/completion events, scheduling counters, and
// pending/running gauges). Call before serving requests.
func (s *Scheduler) SetObserver(rt *obs.Runtime) {
	s.mu.Lock()
	s.obs = rt
	s.mu.Unlock()
	rt.M().SetGauge("mrs_sched_pending", func() int64 { return int64(s.Pending()) })
	rt.M().SetGauge("mrs_sched_running", func() int64 { return int64(s.Running()) })
}

// Submit queues one task. done fires exactly once with the task's
// final outcome: its result, the give-up error after attempts are
// exhausted, or ErrClosed if the scheduler shuts down first. Submit
// never invokes done synchronously.
func (s *Scheduler) Submit(spec *core.TaskSpec, done Callback) (TaskID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.nextID++
	s.pending = append(s.pending, &Task{ID: s.nextID, Spec: spec, done: done})
	s.cond.Broadcast()
	return s.nextID, nil
}

// SubmitGroup queues one task per spec and returns the group handle.
func (s *Scheduler) SubmitGroup(specs []*core.TaskSpec) (*Group, error) {
	g := &Group{
		remaining: len(specs),
		results:   make([]*core.TaskResult, len(specs)),
		done:      make(chan struct{}),
	}
	if len(specs) == 0 {
		close(g.done)
		return g, nil
	}
	for _, spec := range specs {
		idx := spec.TaskIndex
		if _, err := s.Submit(spec, func(res *core.TaskResult, err error) {
			g.record(idx, res, err)
		}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Request returns a task for the slave, blocking up to timeout if none
// is available. A nil task with nil error means the timeout elapsed.
func (s *Scheduler) Request(slaveID string, timeout time.Duration) (*Task, error) {
	deadline := s.clk.Now().Add(timeout)
	timer := s.clk.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, ErrClosed
		}
		if t := s.takeLocked(slaveID); t != nil {
			s.running[t.ID] = &runningEntry{task: t, slave: slaveID, since: s.clk.Now()}
			t.Attempts++
			t.assignees = append(t.assignees, slaveID)
			s.obs.T().TaskStarted(t.Spec.TraceID, t.Attempts, slaveID)
			s.obs.M().Add("mrs_sched_assigned_total", 1)
			if t.Attempts > 1 {
				s.obs.M().Add("mrs_sched_retries_total", 1)
			}
			return t, nil
		}
		if !s.clk.Now().Before(deadline) {
			return nil, nil
		}
		s.cond.Wait()
	}
}

// takeLocked picks the best pending task for a slave: first preference
// is a task whose index this slave completed before (affinity), then
// a task with no affinity at all, then FIFO.
func (s *Scheduler) takeLocked(slaveID string) *Task {
	if len(s.pending) == 0 {
		return nil
	}
	best := -1
	for i, t := range s.pending {
		owner, has := s.affinity[t.Spec.TaskIndex]
		switch {
		case has && owner == slaveID:
			best = i
		case !has && best == -1:
			best = i
		}
		if best == i && has && owner == slaveID {
			break
		}
	}
	if best == -1 {
		best = 0 // all pending tasks have affinity to other slaves; steal the oldest
	}
	t := s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)
	return t
}

// Complete records a successful task. Duplicate or stale completions —
// the same delivery arriving twice, or a previous assignee finishing
// after the task was requeued to another slave — are ignored, so the
// control plane tolerates at-least-once delivery.
func (s *Scheduler) Complete(id TaskID, slaveID string, result *core.TaskResult) error {
	s.mu.Lock()
	entry, ok := s.running[id]
	if !ok {
		// Duplicate completion (e.g. a redelivered task_done, or the
		// task was reassigned after a presumed-dead slave came back).
		// Ignore.
		s.mu.Unlock()
		return nil
	}
	if entry.slave != slaveID {
		if entry.task.wasAssignedTo(slaveID) {
			// Stale completion from a previous assignee racing the
			// current one; the live assignment proceeds untouched.
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		return fmt.Errorf("sched: task %d completed by %q but assigned to %q", id, slaveID, entry.slave)
	}
	delete(s.running, id)
	s.affinity[entry.task.Spec.TaskIndex] = slaveID
	if result != nil {
		// Stamp identity so callers need not echo it over the wire.
		result.TaskIndex = entry.task.Spec.TaskIndex
		result.Dataset = entry.task.Spec.Op.Dataset
	}
	var tm obs.Timing
	if result != nil {
		tm = result.Timing
	}
	s.obs.T().TaskFinished(entry.task.Spec.TraceID, entry.task.Attempts, tm, "")
	s.obs.M().Add("mrs_sched_completed_total", 1)
	done := entry.task.done
	s.mu.Unlock()
	done(result, nil)
	return nil
}

// Fail reports a task error from a slave; the task is retried on any
// slave until attempts are exhausted, at which point its callback fires
// with the final error. Stale failures from a previous assignee do not
// disturb the current assignment (the reassignment race: a slave
// presumed dead reports failure for a task already requeued and running
// elsewhere).
func (s *Scheduler) Fail(id TaskID, slaveID string, taskErr string) error {
	s.mu.Lock()
	entry, ok := s.running[id]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	if entry.slave != slaveID {
		if entry.task.wasAssignedTo(slaveID) {
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		return fmt.Errorf("sched: task %d failed by %q but assigned to %q", id, slaveID, entry.slave)
	}
	delete(s.running, id)
	s.failures[slaveID]++
	s.obs.T().TaskFinished(entry.task.Spec.TraceID, entry.task.Attempts, obs.Timing{}, taskErr)
	s.obs.M().Add("mrs_sched_task_failures_total", 1)
	abort := s.requeueOrAbortLocked(entry.task, fmt.Errorf("sched: task %d failed on %s: %s", id, slaveID, taskErr))
	s.mu.Unlock()
	if abort != nil {
		abort()
	}
	return nil
}

// FailureCount returns how many task failures the slave has reported —
// the input to the master's repeat-offender blacklist.
func (s *Scheduler) FailureCount(slaveID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures[slaveID]
}

// RequeueStale requeues every task that has been running longer than
// lease, reclaiming assignments whose delivery was lost (the get_task
// response never reached the slave). Returns how many were requeued.
func (s *Scheduler) RequeueStale(lease time.Duration) int {
	s.mu.Lock()
	now := s.clk.Now()
	n := 0
	var aborts []func()
	for id, entry := range s.running {
		if now.Sub(entry.since) < lease {
			continue
		}
		delete(s.running, id)
		n++
		s.obs.T().TaskFinished(entry.task.Spec.TraceID, entry.task.Attempts, obs.Timing{}, "lease expired; requeued")
		s.obs.M().Add("mrs_sched_requeued_total", 1)
		if abort := s.requeueOrAbortLocked(entry.task, fmt.Errorf("sched: task %d leased to %s expired (assignment lost?)", id, entry.slave)); abort != nil {
			aborts = append(aborts, abort)
		}
	}
	s.mu.Unlock()
	for _, abort := range aborts {
		abort()
	}
	return n
}

// SlaveDead requeues every task running on the slave and drops its
// affinities so future preferences don't point at a corpse.
func (s *Scheduler) SlaveDead(slaveID string) {
	s.mu.Lock()
	var aborts []func()
	for id, entry := range s.running {
		if entry.slave != slaveID {
			continue
		}
		delete(s.running, id)
		s.obs.T().TaskFinished(entry.task.Spec.TraceID, entry.task.Attempts, obs.Timing{}, "slave died; requeued")
		s.obs.M().Add("mrs_sched_requeued_total", 1)
		if abort := s.requeueOrAbortLocked(entry.task, fmt.Errorf("sched: slave %s died running task %d", slaveID, id)); abort != nil {
			aborts = append(aborts, abort)
		}
	}
	for idx, owner := range s.affinity {
		if owner == slaveID {
			delete(s.affinity, idx)
		}
	}
	delete(s.failures, slaveID)
	s.mu.Unlock()
	for _, abort := range aborts {
		abort()
	}
}

// requeueOrAbortLocked retries a task, or — attempts exhausted —
// returns the give-up call for the caller to fire once the lock is
// released.
func (s *Scheduler) requeueOrAbortLocked(t *Task, cause error) func() {
	if t.Attempts >= s.maxAttempts {
		err := fmt.Errorf("sched: giving up after %d attempts: %w", t.Attempts, cause)
		done := t.done
		return func() { done(nil, err) }
	}
	// Retry: push to the front so recovery happens before new work.
	s.pending = append([]*Task{t}, s.pending...)
	s.cond.Broadcast()
	return nil
}

// Pending returns the number of queued tasks (diagnostics).
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Running returns the number of in-flight tasks (diagnostics).
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.running)
}

// Affinity returns the slave last known to have completed task index
// idx ("" if none); exposed for the affinity ablation bench.
func (s *Scheduler) Affinity(idx int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.affinity[idx]
}

// ClearAffinity erases affinity state (ablation support).
func (s *Scheduler) ClearAffinity() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.affinity = map[int]string{}
}

// Close aborts all queued and running tasks (their callbacks fire with
// ErrClosed) and wakes all blocked requests.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var dones []Callback
	for _, t := range s.pending {
		dones = append(dones, t.done)
	}
	s.pending = nil
	for _, e := range s.running {
		dones = append(dones, e.task.done)
	}
	s.running = map[TaskID]*runningEntry{}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, done := range dones {
		done(nil, ErrClosed)
	}
}
