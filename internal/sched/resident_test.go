package sched

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
)

// residentSpecs builds n map tasks that consume input dataset inputDS
// with OpOpts.Resident semantics (the iterative superstep shape: every
// iteration submits the same (input, split) pairs).
func residentSpecs(n, inputDS int) []*core.TaskSpec {
	out := make([]*core.TaskSpec, n)
	for i := range out {
		out[i] = &core.TaskSpec{
			Op:           &core.Operation{Kind: core.OpMap, FuncName: "m", Splits: 1, Dataset: 9, Resident: true},
			TaskIndex:    i,
			InputDataset: inputDS,
		}
	}
	return out
}

// drainRound assigns and completes one submitted group with the given
// request order, returning slave -> task index served.
func drainRound(t *testing.T, s *Scheduler, g *Group, order []string) map[string]int {
	t.Helper()
	got := map[string]int{}
	for _, w := range order {
		task, err := s.Request(w, time.Second)
		if err != nil || task == nil {
			t.Fatalf("request for %s: %v, %v", w, task, err)
		}
		got[w] = task.Spec.TaskIndex
		if err := s.Complete(task.ID, w, result(task)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestResidentPlacementPreference is the cache-affinity core: after
// iteration 1 seeds each slave's cache, iteration 2 must route every
// split back to its caching slave regardless of request order — and a
// resident owner must win even over a foreign index affinity.
func TestResidentPlacementPreference(t *testing.T) {
	s := New(0)
	defer s.Close()

	// Iteration 1: w1 caches split 0, w2 caches split 1.
	g1, _ := s.SubmitGroup(residentSpecs(2, 1))
	drainRound(t, s, g1, []string{"w1", "w2"})
	if own := s.ResidentOwner(0, 1, 0); own != "w1" {
		t.Fatalf("ResidentOwner(0,1,0) = %q, want w1", own)
	}
	if own := s.ResidentOwner(0, 1, 1); own != "w2" {
		t.Fatalf("ResidentOwner(0,1,1) = %q, want w2", own)
	}

	// Iteration 2: w2 asks first; it must receive its cached split 1,
	// not the head-of-queue split 0.
	g2, _ := s.SubmitGroup(residentSpecs(2, 1))
	got := drainRound(t, s, g2, []string{"w2", "w1"})
	if got["w2"] != 1 || got["w1"] != 0 {
		t.Fatalf("iteration 2 placement = %v, want w1:0 w2:1", got)
	}

	// Flip the plain index affinity to w2 for both splits with a
	// non-resident round that only w2 serves...
	g3, _ := s.SubmitGroup(specs(2))
	drainRound(t, s, g3, []string{"w2", "w2"})
	if s.Affinity(0) != "w2" || s.Affinity(1) != "w2" {
		t.Fatalf("affinity flip failed: %q/%q", s.Affinity(0), s.Affinity(1))
	}

	// ...then submit resident tasks again: w1's resident ownership of
	// split 0 must beat w2's index affinity.
	g4, _ := s.SubmitGroup(residentSpecs(2, 1))
	got = drainRound(t, s, g4, []string{"w1", "w2"})
	if got["w1"] != 0 {
		t.Fatalf("resident owner lost to index affinity: w1 got split %d", got["w1"])
	}
}

// TestResidentFallbackOnSlaveDeath: a dead slave's resident entries are
// dropped, so the next iteration re-places those splits wherever the
// retry lands instead of waiting for a cache that no longer exists.
func TestResidentFallbackOnSlaveDeath(t *testing.T) {
	s := New(0)
	defer s.Close()
	g1, _ := s.SubmitGroup(residentSpecs(2, 1))
	drainRound(t, s, g1, []string{"w1", "w2"})

	s.SlaveDead("w1")
	if own := s.ResidentOwner(0, 1, 0); own != "" {
		t.Fatalf("dead slave still owns split 0: %q", own)
	}
	if own := s.ResidentOwner(0, 1, 1); own != "w2" {
		t.Fatalf("survivor lost ownership of split 1: %q", own)
	}

	// Next iteration: w2 keeps its split; split 0 is served to whoever
	// asks — no deadlock waiting for the dead owner.
	g2, _ := s.SubmitGroup(residentSpecs(2, 1))
	got := drainRound(t, s, g2, []string{"w2", "w3"})
	if got["w2"] != 1 || got["w3"] != 0 {
		t.Fatalf("post-death placement = %v, want w2:1 w3:0", got)
	}
	if own := s.ResidentOwner(0, 1, 0); own != "w3" {
		t.Fatalf("split 0 ownership not transferred to w3: %q", own)
	}
}

// TestResidentPreferenceNeverWithholds: cache affinity is a preference,
// not a reservation — when only foreign-owned resident work is pending,
// a requesting slave still gets a task immediately.
func TestResidentPreferenceNeverWithholds(t *testing.T) {
	s := New(0)
	defer s.Close()
	g1, _ := s.SubmitGroup(residentSpecs(1, 1))
	drainRound(t, s, g1, []string{"w1"})

	// w1 never asks again; w2 must take w1's cached split anyway.
	g2, _ := s.SubmitGroup(residentSpecs(1, 1))
	task, err := s.Request("w2", time.Second)
	if err != nil || task == nil {
		t.Fatalf("foreign resident task withheld: %v, %v", task, err)
	}
	if err := s.Complete(task.ID, "w2", result(task)); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Wait(); err != nil {
		t.Fatal(err)
	}
	if own := s.ResidentOwner(0, 1, 0); own != "w2" {
		t.Fatalf("ownership did not follow the completion: %q", own)
	}
}

// TestResidentOwnershipAfterLeaseRequeue uses the fake clock: a
// resident assignment whose lease expires is requeued, and the slave
// that eventually completes it becomes the new cache owner.
func TestResidentOwnershipAfterLeaseRequeue(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	s := NewWithClock(0, clk)
	defer s.Close()

	g, _ := s.SubmitGroup(residentSpecs(1, 1))
	a, _ := s.Request("w1", time.Millisecond)
	if a == nil {
		t.Fatal("no task assigned")
	}
	clk.Advance(3 * time.Second)
	if n := s.RequeueStale(2 * time.Second); n != 1 {
		t.Fatalf("RequeueStale = %d, want 1", n)
	}
	// w1 never completed, so it owns nothing yet.
	if own := s.ResidentOwner(0, 1, 0); own != "" {
		t.Fatalf("premature ownership: %q", own)
	}
	re, _ := s.Request("w2", time.Millisecond)
	if re == nil || re.ID != a.ID {
		t.Fatalf("requeued task not offered: %v", re)
	}
	if err := s.Complete(re.ID, "w2", result(re)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if own := s.ResidentOwner(0, 1, 0); own != "w2" {
		t.Fatalf("ownership after lease requeue = %q, want w2", own)
	}
}

// TestClearAffinityDropsResident: the ablation reset erases resident
// ownership alongside index affinity.
func TestClearAffinityDropsResident(t *testing.T) {
	s := New(0)
	defer s.Close()
	g, _ := s.SubmitGroup(residentSpecs(1, 1))
	drainRound(t, s, g, []string{"w1"})
	s.ClearAffinity()
	if own := s.ResidentOwner(0, 1, 0); own != "" {
		t.Fatalf("resident ownership survived ClearAffinity: %q", own)
	}
}
