package slave

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func residentKey(job, split int) core.ResidentKey {
	return core.ResidentKey{Job: core.JobID(job), Dataset: 1, Split: split}
}

// TestSlaveResidentBudgetLRU: the slave-wide cache honors its byte
// budget by evicting least-recently-used splits, and the task envs of
// every job share the one cache instance.
func TestSlaveResidentBudgetLRU(t *testing.T) {
	s, err := New(reg(), Options{MasterAddr: "127.0.0.1:1", ResidentBudget: 250})
	if err != nil {
		t.Fatal(err)
	}
	defer s.cleanup()
	if s.resident == nil {
		t.Fatal("ResidentBudget did not install a cache")
	}

	// Per-job envs are struct copies of the base env; the cache pointer
	// must survive the copy so all jobs share one budget.
	env, err := s.envFor(7)
	if err != nil {
		t.Fatal(err)
	}
	if env.Resident != s.resident {
		t.Fatal("job env does not share the slave-wide resident cache")
	}

	urls := []string{"u"}
	s.resident.Put(residentKey(7, 0), urls, [][]byte{make([]byte, 100)})
	s.resident.Put(residentKey(7, 1), urls, [][]byte{make([]byte, 100)})
	if s.ResidentBytes() != 200 || s.ResidentSplits() != 2 {
		t.Fatalf("cache = %d bytes / %d splits, want 200/2", s.ResidentBytes(), s.ResidentSplits())
	}
	// Third split overflows the 250-byte budget: split 0 (LRU) evicts.
	s.resident.Put(residentKey(7, 2), urls, [][]byte{make([]byte, 100)})
	if s.ResidentBytes() != 200 || s.ResidentSplits() != 2 {
		t.Fatalf("after overflow: %d bytes / %d splits, want 200/2", s.ResidentBytes(), s.ResidentSplits())
	}
	if _, ok := s.resident.Get(residentKey(7, 0), urls); ok {
		t.Error("LRU split survived budget eviction")
	}
}

// TestSlaveGCReclaimsResidentBytes: the master's per-job GC broadcast
// must release the retired job's pinned splits (and only those), and
// the derived pinned-bytes gauge must fall back to the survivor's size.
func TestSlaveGCReclaimsResidentBytes(t *testing.T) {
	rt := obs.New(nil)
	s, err := New(reg(), Options{
		MasterAddr:     "127.0.0.1:1",
		ResidentBudget: 1 << 20,
		Obs:            rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.cleanup()

	urls := []string{"u"}
	s.resident.Put(residentKey(3, 0), urls, [][]byte{make([]byte, 300)})
	s.resident.Put(residentKey(3, 1), urls, [][]byte{make([]byte, 300)})
	s.resident.Put(residentKey(4, 0), urls, [][]byte{make([]byte, 100)})

	s.gcJob(3)
	if s.ResidentBytes() != 100 || s.ResidentSplits() != 1 {
		t.Fatalf("after gc: %d bytes / %d splits, want 100/1", s.ResidentBytes(), s.ResidentSplits())
	}
	if _, ok := s.resident.Get(residentKey(4, 0), urls); !ok {
		t.Error("GC of job 3 evicted job 4's split")
	}

	snap := rt.M().Snapshot()
	if snap[obs.MetricResidentGCBytes] != 600 {
		t.Errorf("gc reclaimed bytes = %d, want 600", snap[obs.MetricResidentGCBytes])
	}
	if snap[obs.MetricResidentPinnedBytes] != 100 {
		t.Errorf("pinned-bytes gauge = %d, want 100", snap[obs.MetricResidentPinnedBytes])
	}
}

// TestSlaveZeroBudgetDisablesCache: budget 0 is the ablation switch —
// no cache, nil-safe accessors.
func TestSlaveZeroBudgetDisablesCache(t *testing.T) {
	s, err := New(reg(), Options{MasterAddr: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.cleanup()
	if s.resident != nil {
		t.Error("zero budget installed a cache")
	}
	if s.ResidentBytes() != 0 || s.ResidentSplits() != 0 {
		t.Error("disabled cache reported state")
	}
}
