package slave

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvio"
	"repro/internal/master"
)

func reg() *core.Registry {
	r := core.NewRegistry()
	r.RegisterMap("identity", func(k, v []byte, e kvio.Emitter) error { return e.Emit(k, v) })
	return r
}

func TestNewRequiresMaster(t *testing.T) {
	if _, err := New(reg(), Options{}); err == nil {
		t.Error("missing MasterAddr accepted")
	}
}

func TestDataServerServesBuckets(t *testing.T) {
	s, err := New(reg(), Options{MasterAddr: "127.0.0.1:1"}) // master never dialed here
	if err != nil {
		t.Fatal(err)
	}
	defer s.cleanup()
	if s.DataAddr() == "" {
		t.Fatal("no data server in direct mode")
	}
	d, err := s.store.Put("ds1/t0/s0", []kvio.Pair{kvio.StrPair("k", "v")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.URL, "http://"+s.DataAddr()) {
		t.Fatalf("bucket URL %q not served by this slave", d.URL)
	}
	resp, err := http.Get(d.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET %s: %s", d.URL, resp.Status)
	}
	pairs, err := kvio.NewReader(resp.Body).ReadAll()
	if err != nil || len(pairs) != 1 || string(pairs[0].Key) != "k" {
		t.Errorf("served pairs %v, err %v", pairs, err)
	}
}

func TestDataServerRejectsTraversal(t *testing.T) {
	s, err := New(reg(), Options{MasterAddr: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.cleanup()
	resp, err := http.Get("http://" + s.DataAddr() + "/data/..%2Fsecret")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("traversal name served")
	}
}

func TestSharedDirModeHasNoDataServer(t *testing.T) {
	s, err := New(reg(), Options{MasterAddr: "127.0.0.1:1", SharedDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.cleanup()
	if s.DataAddr() != "" {
		t.Error("shared-dir slave started a data server")
	}
	d, err := s.store.Put("x", []kvio.Pair{kvio.StrPair("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.URL, "file://") {
		t.Errorf("shared-dir bucket URL %q, want file scheme", d.URL)
	}
}

func TestRunCancelledDuringSignin(t *testing.T) {
	// No master listening: Run must exit promptly when cancelled.
	s, err := New(reg(), Options{MasterAddr: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("expected error from cancelled signin")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not exit after cancel")
	}
}

func TestRunAgainstRealMaster(t *testing.T) {
	m, err := master.New(master.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(reg(), Options{MasterAddr: m.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Run(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.WaitForSlaves(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("slave exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("slave did not shut down with the master")
	}
	if s.ID() == "" {
		t.Error("slave never learned its id")
	}
}

func TestRetryBackoffBounded(t *testing.T) {
	s, err := New(reg(), Options{MasterAddr: "127.0.0.1:1", BackoffSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer s.cleanup()
	if s.retry.Delay(1) <= 0 {
		t.Error("Delay(1) not positive")
	}
	if d := s.retry.Delay(1000); d > s.retry.Max+s.retry.Max/2 {
		t.Errorf("backoff unbounded: %v", d)
	}
}
