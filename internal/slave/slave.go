// Package slave implements the worker process: it signs in with the
// master, heartbeats, pulls tasks, executes them with the shared task
// engine from internal/core, and serves its output buckets to peers
// over a built-in HTTP server (§IV-B's "direct communication" path) or
// stages them on a shared filesystem (the fault-tolerant path).
//
// A slave optionally carries a resident dataset cache
// (Options.ResidentBudget, core.ResidentCache): input splits of
// Resident-marked operations are kept pinned in memory after their
// first fetch, so each iteration of an iterative job reads its
// invariant inputs locally instead of re-shuffling them. The cache is
// slave-wide (shared by every job's task env), bounded by an LRU byte
// budget, and drained per job by the master's GC broadcast. See
// docs/ITERATIVE.md.
//
// Each task attempt is measured by the task engine (wall time, time
// blocked reading input, byte/record counts) and the breakdown rides
// back to the master as the optional final task_done argument, where
// it lands in the trace span for the attempt and in Job.Stats; an
// Options.Obs runtime additionally collects the slave's local
// task-engine metrics (tasks executed, shuffle bytes by data path) for
// the -mrs-debug-addr surface. See docs/OBSERVABILITY.md.
package slave

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bucket"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rpcproto"
	"repro/internal/xmlrpc"
)

// Options configures a slave.
type Options struct {
	// MasterAddr is the master's host:port.
	MasterAddr string
	// Dir is the local bucket directory (default: fresh temp dir).
	Dir string
	// SharedDir enables filesystem staging: buckets live here and are
	// advertised as file:// URLs; no data server is started.
	SharedDir string
	// Addr is the data server listen address (default "127.0.0.1:0").
	Addr string
	// Logger receives slave diagnostics (default: discard).
	Logger *log.Logger
	// MaxConsecutiveRPCErrors before the slave gives up on the master.
	MaxConsecutiveRPCErrors int
	// RPCIntercept wraps every outgoing master RPC (fault injection,
	// tracing). Nil means direct calls.
	RPCIntercept xmlrpc.Intercept
	// DataClient overrides the HTTP client used for slave-to-slave
	// bucket fetches (fault injection). Nil selects the shared default.
	DataClient *http.Client
	// BackoffSeed seeds the retry-jitter stream so a slave's backoff
	// schedule is reproducible (0 selects a fixed default).
	BackoffSeed uint64
	// Obs receives the slave's task-engine metrics (nil disables).
	Obs *obs.Runtime
	// Prefetch is the input-fetch window for this slave's tasks
	// (0 = default, 1 = sequential).
	Prefetch int
	// Compress makes the slave write its buckets flate-compressed; the
	// data server then serves compressed bytes to peers that accept
	// deflate. Purely local — peers with any setting interoperate.
	Compress bool
	// Codec selects the compression codec for block-framed buckets
	// ("" keeps the legacy framing; wins over Compress when set). Like
	// Compress it is purely local: the data server negotiates per
	// request, so mixed-codec fleets interoperate.
	Codec string
	// BlockEncoding selects the block encoding for this slave's
	// buckets ("row", "columnar", "columnar-raw", "columnar-dict",
	// "columnar-delta"; "" = row). Purely local like Codec: the data
	// server transcodes for peers that only accept row blocks.
	BlockEncoding string
	// RowOnlyFetch makes this slave's bucket fetches omit the
	// columnar-accept header, behaving like a pre-columnar peer (its
	// requests force servers into the row-transcode fallback). A
	// mixed-version ablation and test hook; results are identical.
	RowOnlyFetch bool
	// BlockSize overrides the record-block flush threshold in bytes
	// (0 = default).
	BlockSize int
	// Concurrency is how many tasks the slave runs at once (default 1,
	// the classic sequential worker). With a multi-job master, slots
	// above 1 let one slave serve several jobs' tasks concurrently.
	Concurrency int
	// ResidentBudget is the byte budget of the slave's resident dataset
	// cache: Resident-marked input splits are kept in memory (LRU under
	// this budget) and served warm when later iterations consume the
	// same split. <= 0 disables the cache.
	ResidentBudget int64
}

// Slave is one worker.
type Slave struct {
	opts    Options
	reg     *core.Registry
	client  *xmlrpc.Client
	store   *bucket.Store
	env     *core.TaskEnv
	ln      net.Listener
	httpSrv *http.Server
	ownsDir string
	logger  *log.Logger
	retry   *fault.Backoff

	idMu sync.Mutex
	id   string // master-assigned; rewritten on re-signin

	// Task slots: a slot is acquired before polling get_task, so the
	// slave never asks for work it cannot start immediately.
	sem chan struct{}
	wg  sync.WaitGroup

	// Per-job execution state: jobs other than 0 get their own TaskEnv
	// clone with a private temp dir, created lazily and reclaimed when
	// the master broadcasts the job's completion.
	envMu   sync.Mutex
	envs    map[core.JobID]*core.TaskEnv
	jobDirs map[core.JobID]string

	// resident is the slave-wide resident dataset cache. It lives on
	// the slave, not on a per-job env: envFor's struct copy shares the
	// pointer, so every job's tasks see one cache (keys are job-scoped)
	// and the job GC broadcast can reclaim a job's entries in one call.
	resident *core.ResidentCache

	tasksRun  atomic.Int64
	resignins atomic.Int64
	jobGCs    atomic.Int64
	stopHB    chan struct{}
}

// New prepares a slave (listening for data but not yet signed in).
func New(reg *core.Registry, opts Options) (*Slave, error) {
	if opts.MasterAddr == "" {
		return nil, fmt.Errorf("slave: MasterAddr required")
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.MaxConsecutiveRPCErrors <= 0 {
		opts.MaxConsecutiveRPCErrors = 10
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.New(os.Stderr, "", 0)
		logger.SetOutput(discard{})
	}
	seed := opts.BackoffSeed
	if seed == 0 {
		seed = 1
	}
	s := &Slave{
		opts:    opts,
		reg:     reg,
		client:  xmlrpc.NewClient("http://" + opts.MasterAddr + xmlrpc.RPCPath),
		logger:  logger,
		retry:   fault.NewBackoff(seed),
		stopHB:  make(chan struct{}),
		sem:     make(chan struct{}, opts.Concurrency),
		envs:    map[core.JobID]*core.TaskEnv{},
		jobDirs: map[core.JobID]string{},
	}
	s.client.Intercept = opts.RPCIntercept

	dir := opts.Dir
	if opts.SharedDir != "" {
		dir = opts.SharedDir
	} else if dir == "" {
		d, err := os.MkdirTemp("", "mrs-slave-*")
		if err != nil {
			return nil, err
		}
		dir = d
		s.ownsDir = d
	}

	baseURL := ""
	if opts.SharedDir == "" {
		ln, err := net.Listen("tcp", opts.Addr)
		if err != nil {
			return nil, fmt.Errorf("slave: listen %s: %w", opts.Addr, err)
		}
		s.ln = ln
		baseURL = "http://" + ln.Addr().String() + "/data"
	}
	store, err := bucket.NewFileStore(dir, baseURL)
	if err != nil {
		if s.ln != nil {
			s.ln.Close()
		}
		return nil, err
	}
	s.store = store
	if opts.DataClient != nil {
		store.SetHTTPClient(opts.DataClient)
	}
	store.SetCompress(opts.Compress)
	if err := store.SetCodec(opts.Codec); err != nil {
		if s.ln != nil {
			s.ln.Close()
		}
		return nil, fmt.Errorf("slave: %w", err)
	}
	if err := store.SetBlockEncoding(opts.BlockEncoding); err != nil {
		if s.ln != nil {
			s.ln.Close()
		}
		return nil, fmt.Errorf("slave: %w", err)
	}
	store.SetRowOnlyFetch(opts.RowOnlyFetch)
	store.SetBlockSize(opts.BlockSize)
	store.SetMetrics(opts.Obs.M())
	// The runtime may be shared by several slaves (the in-process
	// cluster), so slaves contribute counters, which sum, rather than
	// per-slave gauges, which would collide.
	s.resident = core.NewResidentCache(opts.ResidentBudget)
	s.resident.SetMetrics(opts.Obs.M())
	if s.resident != nil {
		obs.RegisterResidentGauge(opts.Obs.M())
	}
	s.env = &core.TaskEnv{Store: store, Reg: reg, TempDir: dir, Obs: opts.Obs, Prefetch: opts.Prefetch, Resident: s.resident}
	if opts.Obs != nil {
		s.env.Clock = opts.Obs.Clk()
	}

	if s.ln != nil {
		mux := http.NewServeMux()
		mux.HandleFunc("/data/", s.serveData)
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(s.ln)
	}
	return s, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// DataAddr returns the data server address ("" in shared-dir mode).
func (s *Slave) DataAddr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// ID returns the master-assigned slave id (empty before signin).
func (s *Slave) ID() string {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	return s.id
}

func (s *Slave) setID(id string) {
	s.idMu.Lock()
	s.id = id
	s.idMu.Unlock()
}

// TasksRun returns how many tasks this slave has executed.
func (s *Slave) TasksRun() int64 { return s.tasksRun.Load() }

// JobGCs returns how many job-complete reclamations this slave has
// performed.
func (s *Slave) JobGCs() int64 { return s.jobGCs.Load() }

// StoreDir returns the directory backing this slave's bucket store.
func (s *Slave) StoreDir() string { return s.store.Dir() }

// ResidentBytes returns the bytes currently pinned in this slave's
// resident cache (0 when the cache is disabled).
func (s *Slave) ResidentBytes() int64 { return s.resident.Bytes() }

// ResidentSplits returns how many input splits this slave's resident
// cache holds.
func (s *Slave) ResidentSplits() int { return s.resident.Len() }

// Resignins returns how many times the slave re-signed in after the
// master declared it dead (e.g. it hung past the heartbeat timeout).
func (s *Slave) Resignins() int64 { return s.resignins.Load() }

func (s *Slave) serveData(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/data/")
	path, err := s.store.ServeName(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bucket.ServeBucket(w, r, path)
}

// Run signs in and processes tasks until the master shuts down, the
// context is cancelled, or the master becomes unreachable.
func (s *Slave) Run(ctx context.Context) error {
	defer s.cleanup()
	defer s.wg.Wait() // drain in-flight tasks before tearing down

	reply, err := s.signin(ctx)
	if err != nil {
		return err
	}
	s.setID(reply.SlaveID)
	interval := time.Duration(reply.HeartbeatMillis) * time.Millisecond
	go s.heartbeat(interval)
	defer close(s.stopHB)

	consecutiveErrs := 0
	for {
		// Take a task slot before polling: the slave only asks the
		// master for work it can start right away. With Concurrency 1
		// this degenerates to the classic sequential poll-run loop.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case s.sem <- struct{}{}:
		}
		release := func() { <-s.sem }
		id := s.ID()
		raw, err := s.client.Call(rpcproto.MethodGetTask, id)
		if err != nil {
			release()
			if rpcproto.IsUnknownSlave(err) {
				// The master reaped us (we hung or our heartbeats were
				// lost past the timeout), or it restarted from its
				// journal and has never met us. Either way our old
				// tasks were requeued or replayed; rejoin under a fresh
				// identity rather than dying.
				s.logger.Printf("slave %s: declared dead by master; re-signing in", id)
				reply, err := s.signin(ctx)
				if err != nil {
					return fmt.Errorf("slave: re-signin after being declared dead: %w", err)
				}
				s.setID(reply.SlaveID)
				s.resignins.Add(1)
				s.opts.Obs.M().Add("mrs_slave_resignins_total", 1)
				consecutiveErrs = 0
				continue
			}
			consecutiveErrs++
			s.logger.Printf("slave %s: get_task: %v", id, err)
			if consecutiveErrs >= s.opts.MaxConsecutiveRPCErrors {
				return fmt.Errorf("slave: master unreachable: %w", err)
			}
			if !sleepCtx(ctx, s.retry.Delay(consecutiveErrs)) {
				return ctx.Err()
			}
			continue
		}
		consecutiveErrs = 0
		a, err := rpcproto.DecodeAssignment(raw)
		if err != nil {
			release()
			return fmt.Errorf("slave: bad assignment: %w", err)
		}
		for _, name := range a.Deletes {
			_ = s.store.Remove(name)
		}
		for _, job := range a.GCJobs {
			s.gcJob(core.JobID(job))
		}
		switch a.Status {
		case rpcproto.StatusShutdown:
			release()
			return nil
		case rpcproto.StatusIdle:
			release()
			continue
		case rpcproto.StatusTask:
			s.wg.Add(1)
			go func(a rpcproto.Assignment) {
				defer s.wg.Done()
				defer release()
				s.runTask(a)
			}(a)
		}
	}
}

// reportRetries bounds task_done/task_failed delivery attempts. Losing
// a report is survivable (the master's task lease reclaims the
// assignment) but expensive, so reports retry harder than polls.
const reportRetries = 6

func (s *Slave) runTask(a rpcproto.Assignment) {
	id := s.ID()
	job := int64(a.Spec.Job)
	env, err := s.envFor(a.Spec.Job)
	if err != nil {
		s.logger.Printf("slave %s: job %d env: %v", id, job, err)
		s.report(rpcproto.MethodTaskFailed, id, job, a.TaskID, err.Error())
		return
	}
	result, err := core.ExecTask(env, a.Spec)
	s.tasksRun.Add(1)
	if err != nil {
		s.logger.Printf("slave %s: task %d (attempt %d) failed: %v", id, a.TaskID, a.Attempt, err)
		s.report(rpcproto.MethodTaskFailed, id, job, a.TaskID, err.Error())
		return
	}
	outputs := rpcproto.EncodeDescriptors(result.Outputs)
	s.report(rpcproto.MethodTaskDone, id, job, a.TaskID, outputs, rpcproto.EncodeTiming(result.Timing))
}

// envFor returns the task environment for a job. Job 0 (the unmanaged
// single-job path) runs in the slave's base environment, preserving
// classic layout; other jobs get a lazily created clone whose TempDir
// is a private per-job directory, so concurrent jobs never interleave
// scratch files and a job's scratch can be reclaimed wholesale.
func (s *Slave) envFor(job core.JobID) (*core.TaskEnv, error) {
	if job == 0 {
		return s.env, nil
	}
	s.envMu.Lock()
	defer s.envMu.Unlock()
	if env, ok := s.envs[job]; ok {
		return env, nil
	}
	dir, err := os.MkdirTemp(s.env.TempDir, fmt.Sprintf("job%d-*", job))
	if err != nil {
		return nil, fmt.Errorf("slave: job %d temp dir: %w", job, err)
	}
	env := *s.env
	env.TempDir = dir
	s.envs[job] = &env
	s.jobDirs[job] = dir
	return &env, nil
}

// gcJob reclaims everything a completed job left on this slave: its
// buckets in the store, its pinned resident-cache splits, and its
// private scratch directory. The master
// broadcasts the job id on the next get_task of every slave once the
// job's driver has drained.
func (s *Slave) gcJob(job core.JobID) {
	n, err := s.store.RemoveJob(int64(job))
	if err != nil {
		s.logger.Printf("slave %s: gc job %d: %v", s.ID(), job, err)
	}
	if freed := s.resident.DropJob(job); freed > 0 {
		s.opts.Obs.M().Add(obs.MetricResidentGCBytes, freed)
	}
	s.envMu.Lock()
	dir, ok := s.jobDirs[job]
	delete(s.jobDirs, job)
	delete(s.envs, job)
	s.envMu.Unlock()
	if ok {
		os.RemoveAll(dir)
	}
	s.jobGCs.Add(1)
	s.opts.Obs.M().Add("mrs_slave_job_gcs_total", 1)
	if n > 0 {
		s.logger.Printf("slave %s: gc job %d: removed %d buckets", s.ID(), job, n)
	}
}

// report delivers a task outcome with retries and backoff. Transport
// errors (including injected drops, where the master may already have
// processed the call) are retried — the master treats redelivery
// idempotently. Server-side faults are final: retrying a call the
// master rejected cannot succeed.
func (s *Slave) report(method string, args ...any) {
	var lastErr error
	for attempt := 1; attempt <= reportRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(s.retry.Delay(attempt - 1))
		}
		_, err := s.client.Call(method, args...)
		if err == nil {
			return
		}
		lastErr = err
		if rpcproto.IsUnknownSlave(err) {
			// A master that restarted from its journal (or reaped us)
			// processed the report before faulting — task state is
			// reconciled idempotently there, and the main loop's next
			// get_task re-signs us in. Nothing to retry, nothing lost.
			s.logger.Printf("slave %s: %s acknowledged by a master that no longer knows us; will re-sign-in", s.ID(), method)
			return
		}
		if _, isFault := err.(*xmlrpc.Fault); isFault {
			break
		}
	}
	s.logger.Printf("slave %s: %s undelivered: %v", s.ID(), method, lastErr)
}

func (s *Slave) signin(ctx context.Context) (rpcproto.SigninReply, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		select {
		case <-ctx.Done():
			return rpcproto.SigninReply{}, ctx.Err()
		default:
		}
		// Advertise kind, data address, and slot count; a pre-tree
		// master ignores the argument, so both directions interoperate.
		node := rpcproto.SigninArgs{
			Kind:  rpcproto.NodeKindSlave,
			Addr:  s.DataAddr(),
			Slots: int64(s.opts.Concurrency),
		}
		raw, err := s.client.Call(rpcproto.MethodSignin, node.Encode())
		if err == nil {
			return rpcproto.DecodeSigninReply(raw)
		}
		lastErr = err
		if !sleepCtx(ctx, s.retry.Delay(attempt+1)) {
			return rpcproto.SigninReply{}, ctx.Err()
		}
	}
	return rpcproto.SigninReply{}, fmt.Errorf("slave: signin failed: %w", lastErr)
}

func (s *Slave) heartbeat(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopHB:
			return
		case <-tick.C:
			id := s.ID()
			if _, err := s.client.Call(rpcproto.MethodPing, id); err != nil {
				s.logger.Printf("slave %s: ping: %v", id, err)
			}
		}
	}
}

func (s *Slave) cleanup() {
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	// Release pooled data-plane and control-plane connections so peers
	// and the master can shut their servers down gracefully.
	s.store.CloseIdle()
	s.client.CloseIdle()
	s.envMu.Lock()
	dirs := s.jobDirs
	s.jobDirs = map[core.JobID]string{}
	s.envs = map[core.JobID]*core.TaskEnv{}
	s.envMu.Unlock()
	for _, d := range dirs {
		os.RemoveAll(d)
	}
	if s.ownsDir != "" {
		os.RemoveAll(s.ownsDir)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
