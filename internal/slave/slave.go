// Package slave implements the worker process: it signs in with the
// master, heartbeats, pulls tasks, executes them with the shared task
// engine from internal/core, and serves its output buckets to peers
// over a built-in HTTP server (§IV-B's "direct communication" path) or
// stages them on a shared filesystem (the fault-tolerant path).
package slave

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bucket"
	"repro/internal/core"
	"repro/internal/rpcproto"
	"repro/internal/xmlrpc"
)

// Options configures a slave.
type Options struct {
	// MasterAddr is the master's host:port.
	MasterAddr string
	// Dir is the local bucket directory (default: fresh temp dir).
	Dir string
	// SharedDir enables filesystem staging: buckets live here and are
	// advertised as file:// URLs; no data server is started.
	SharedDir string
	// Addr is the data server listen address (default "127.0.0.1:0").
	Addr string
	// Logger receives slave diagnostics (default: discard).
	Logger *log.Logger
	// MaxConsecutiveRPCErrors before the slave gives up on the master.
	MaxConsecutiveRPCErrors int
}

// Slave is one worker.
type Slave struct {
	opts    Options
	reg     *core.Registry
	client  *xmlrpc.Client
	store   *bucket.Store
	env     *core.TaskEnv
	ln      net.Listener
	httpSrv *http.Server
	ownsDir string
	id      string
	logger  *log.Logger

	tasksRun atomic.Int64
	stopHB   chan struct{}
}

// New prepares a slave (listening for data but not yet signed in).
func New(reg *core.Registry, opts Options) (*Slave, error) {
	if opts.MasterAddr == "" {
		return nil, fmt.Errorf("slave: MasterAddr required")
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.MaxConsecutiveRPCErrors <= 0 {
		opts.MaxConsecutiveRPCErrors = 10
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.New(os.Stderr, "", 0)
		logger.SetOutput(discard{})
	}
	s := &Slave{
		opts:   opts,
		reg:    reg,
		client: xmlrpc.NewClient("http://" + opts.MasterAddr + xmlrpc.RPCPath),
		logger: logger,
		stopHB: make(chan struct{}),
	}

	dir := opts.Dir
	if opts.SharedDir != "" {
		dir = opts.SharedDir
	} else if dir == "" {
		d, err := os.MkdirTemp("", "mrs-slave-*")
		if err != nil {
			return nil, err
		}
		dir = d
		s.ownsDir = d
	}

	baseURL := ""
	if opts.SharedDir == "" {
		ln, err := net.Listen("tcp", opts.Addr)
		if err != nil {
			return nil, fmt.Errorf("slave: listen %s: %w", opts.Addr, err)
		}
		s.ln = ln
		baseURL = "http://" + ln.Addr().String() + "/data"
	}
	store, err := bucket.NewFileStore(dir, baseURL)
	if err != nil {
		if s.ln != nil {
			s.ln.Close()
		}
		return nil, err
	}
	s.store = store
	s.env = &core.TaskEnv{Store: store, Reg: reg, TempDir: dir}

	if s.ln != nil {
		mux := http.NewServeMux()
		mux.HandleFunc("/data/", s.serveData)
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(s.ln)
	}
	return s, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// DataAddr returns the data server address ("" in shared-dir mode).
func (s *Slave) DataAddr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// ID returns the master-assigned slave id (empty before signin).
func (s *Slave) ID() string { return s.id }

// TasksRun returns how many tasks this slave has executed.
func (s *Slave) TasksRun() int64 { return s.tasksRun.Load() }

func (s *Slave) serveData(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/data/")
	path, err := s.store.ServeName(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.ServeFile(w, r, path)
}

// Run signs in and processes tasks until the master shuts down, the
// context is cancelled, or the master becomes unreachable.
func (s *Slave) Run(ctx context.Context) error {
	defer s.cleanup()

	reply, err := s.signin(ctx)
	if err != nil {
		return err
	}
	s.id = reply.SlaveID
	interval := time.Duration(reply.HeartbeatMillis) * time.Millisecond
	go s.heartbeat(interval)
	defer close(s.stopHB)

	consecutiveErrs := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		raw, err := s.client.Call(rpcproto.MethodGetTask, s.id)
		if err != nil {
			consecutiveErrs++
			s.logger.Printf("slave %s: get_task: %v", s.id, err)
			if consecutiveErrs >= s.opts.MaxConsecutiveRPCErrors {
				return fmt.Errorf("slave: master unreachable: %w", err)
			}
			if !sleepCtx(ctx, backoff(consecutiveErrs)) {
				return ctx.Err()
			}
			continue
		}
		consecutiveErrs = 0
		a, err := rpcproto.DecodeAssignment(raw)
		if err != nil {
			return fmt.Errorf("slave: bad assignment: %w", err)
		}
		for _, name := range a.Deletes {
			_ = s.store.Remove(name)
		}
		switch a.Status {
		case rpcproto.StatusShutdown:
			return nil
		case rpcproto.StatusIdle:
			continue
		case rpcproto.StatusTask:
			s.runTask(a)
		}
	}
}

func (s *Slave) runTask(a rpcproto.Assignment) {
	result, err := core.ExecTask(s.env, a.Spec)
	s.tasksRun.Add(1)
	if err != nil {
		s.logger.Printf("slave %s: task %d failed: %v", s.id, a.TaskID, err)
		if _, rerr := s.client.Call(rpcproto.MethodTaskFailed, s.id, a.TaskID, err.Error()); rerr != nil {
			s.logger.Printf("slave %s: reporting failure: %v", s.id, rerr)
		}
		return
	}
	outputs := rpcproto.EncodeDescriptors(result.Outputs)
	if _, rerr := s.client.Call(rpcproto.MethodTaskDone, s.id, a.TaskID, outputs); rerr != nil {
		s.logger.Printf("slave %s: reporting completion: %v", s.id, rerr)
	}
}

func (s *Slave) signin(ctx context.Context) (rpcproto.SigninReply, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		select {
		case <-ctx.Done():
			return rpcproto.SigninReply{}, ctx.Err()
		default:
		}
		raw, err := s.client.Call(rpcproto.MethodSignin)
		if err == nil {
			return rpcproto.DecodeSigninReply(raw)
		}
		lastErr = err
		if !sleepCtx(ctx, backoff(attempt+1)) {
			return rpcproto.SigninReply{}, ctx.Err()
		}
	}
	return rpcproto.SigninReply{}, fmt.Errorf("slave: signin failed: %w", lastErr)
}

func (s *Slave) heartbeat(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopHB:
			return
		case <-tick.C:
			if _, err := s.client.Call(rpcproto.MethodPing, s.id); err != nil {
				s.logger.Printf("slave %s: ping: %v", s.id, err)
			}
		}
	}
}

func (s *Slave) cleanup() {
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.ownsDir != "" {
		os.RemoveAll(s.ownsDir)
	}
}

func backoff(attempt int) time.Duration {
	d := time.Duration(attempt) * 50 * time.Millisecond
	if d > time.Second {
		d = time.Second
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
