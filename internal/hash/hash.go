// Package hash provides the hash primitives used throughout mrs-go:
// FNV-1a for key partitioning, SplitMix64 for seed expansion, and a
// multi-argument seed combiner that backs the independent pseudorandom
// stream construction described in §IV-A of the Mrs paper.
package hash

// FNV-1a 64-bit constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// FNV1a64 returns the 64-bit FNV-1a hash of b.
func FNV1a64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// FNV1a64String is FNV1a64 for strings without an allocation.
func FNV1a64String(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// SplitMix64 advances *state and returns the next SplitMix64 output.
// SplitMix64 is a tiny, high-quality 64-bit mixer (Steele et al.); we use
// it to expand small seeds into full generator states.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 returns a stateless mix of x (one SplitMix64 step from x).
func Mix64(x uint64) uint64 {
	s := x
	return SplitMix64(&s)
}

// CombineSeeds hashes a variable number of 64-bit arguments into a single
// seed such that any change to any argument (or to the number of
// arguments) yields an unrelated seed. It is the Go analogue of the seed
// construction behind mrs.MapReduce.random(*args): each (offset, value)
// pair is mixed so that argument order matters.
func CombineSeeds(args ...uint64) uint64 {
	h := uint64(fnvOffset64)
	h = mixInto(h, uint64(len(args)))
	for i, a := range args {
		h = mixInto(h, uint64(i)+0x9E3779B97F4A7C15)
		h = mixInto(h, a)
	}
	return Mix64(h)
}

func mixInto(h, v uint64) uint64 {
	h ^= Mix64(v)
	h *= fnvPrime64
	return h
}

// Bucket maps a hash value onto n buckets, n > 0. It uses the
// multiply-shift trick to avoid modulo bias for small n.
func Bucket(h uint64, n int) int {
	if n <= 0 {
		panic("hash: Bucket requires n > 0")
	}
	// Fixed-point multiply: (h/2^64) * n.
	hi, _ := mul64(h, uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}
