package hash

import (
	"testing"
	"testing/quick"
)

func TestFNV1a64KnownVectors(t *testing.T) {
	// Reference values for FNV-1a 64-bit.
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xcbf29ce484222325},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, c := range cases {
		if got := FNV1a64([]byte(c.in)); got != c.want {
			t.Errorf("FNV1a64(%q) = %#x, want %#x", c.in, got, c.want)
		}
		if got := FNV1a64String(c.in); got != c.want {
			t.Errorf("FNV1a64String(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestFNV1a64StringMatchesBytes(t *testing.T) {
	f := func(b []byte) bool {
		return FNV1a64(b) == FNV1a64String(string(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitMix64Sequence(t *testing.T) {
	// Reference outputs of the canonical SplitMix64 with seed 0
	// (Vigna's reference C implementation).
	state := uint64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
		0xF88BB8A8724C81EC,
		0x1B39896A51A8749B,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Errorf("SplitMix64 seed 0 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestCombineSeedsDistinct(t *testing.T) {
	seen := map[uint64][]uint64{}
	inputs := [][]uint64{
		{},
		{0},
		{1},
		{0, 0},
		{0, 1},
		{1, 0},
		{1, 1},
		{0, 0, 0},
		{42, 7, 9},
		{7, 42, 9},
		{9, 7, 42},
	}
	for _, in := range inputs {
		s := CombineSeeds(in...)
		if prev, ok := seen[s]; ok {
			t.Errorf("CombineSeeds collision: %v and %v both -> %#x", prev, in, s)
		}
		seen[s] = in
	}
}

func TestCombineSeedsDeterministic(t *testing.T) {
	a := CombineSeeds(3, 1, 4, 1, 5)
	b := CombineSeeds(3, 1, 4, 1, 5)
	if a != b {
		t.Errorf("CombineSeeds not deterministic: %#x vs %#x", a, b)
	}
}

func TestCombineSeedsOrderSensitive(t *testing.T) {
	f := func(x, y uint64) bool {
		if x == y {
			return true
		}
		return CombineSeeds(x, y) != CombineSeeds(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketRange(t *testing.T) {
	f := func(h uint64, n uint8) bool {
		buckets := int(n%64) + 1
		b := Bucket(h, buckets)
		return b >= 0 && b < buckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketSingle(t *testing.T) {
	for _, h := range []uint64{0, 1, 1 << 63, ^uint64(0)} {
		if got := Bucket(h, 1); got != 0 {
			t.Errorf("Bucket(%d, 1) = %d, want 0", h, got)
		}
	}
}

func TestBucketPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bucket(0, 0) did not panic")
		}
	}()
	Bucket(0, 0)
}

func TestBucketRoughlyUniform(t *testing.T) {
	const n = 16
	const trials = 1 << 16
	counts := make([]int, n)
	state := uint64(99)
	for i := 0; i < trials; i++ {
		counts[Bucket(SplitMix64(&state), n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d far from expected %d", i, c, want)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{^uint64(0), 2, 1, ^uint64(0) - 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkFNV1a64(b *testing.B) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		FNV1a64(data)
	}
}

func BenchmarkCombineSeeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CombineSeeds(uint64(i), 42, 7)
	}
}
