// Package clock abstracts time for the distributed runtime. The master
// and scheduler take a Clock so liveness machinery (heartbeat reaping,
// task leases, long-poll deadlines) can be driven by a Fake clock in
// tests instead of real sleeps, which makes timeout tests deterministic
// under load.
package clock

import (
	"sync"
	"time"
)

// Clock is the subset of package time the runtime depends on.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
	// AfterFunc runs f once d has elapsed.
	AfterFunc(d time.Duration, f func()) Timer
}

// Ticker mirrors time.Ticker behind an interface.
type Ticker interface {
	Chan() <-chan time.Time
	Stop()
}

// Timer mirrors the stoppable half of time.Timer.
type Timer interface {
	Stop() bool
}

// ---------------------------------------------------------------------------
// Real clock

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

type realTicker struct{ t *time.Ticker }

func (r realTicker) Chan() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()                  { r.t.Stop() }

// ---------------------------------------------------------------------------
// Fake clock

// Fake is a manually advanced clock. Time only moves when Advance is
// called; due timers run synchronously (outside the clock lock) and due
// tickers get a non-blocking send, like the real ticker's dropped-tick
// behavior.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	timers  []*fakeTimer
	tickers []*fakeTicker
}

// NewFake returns a Fake clock positioned at start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// NewTicker implements Clock.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTicker{clk: f, period: d, next: f.now.Add(d), c: make(chan time.Time, 1)}
	f.tickers = append(f.tickers, t)
	return t
}

// AfterFunc implements Clock.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{clk: f, at: f.now.Add(d), fn: fn}
	f.timers = append(f.timers, t)
	return t
}

// Advance moves the clock forward by d, firing every timer and ticker
// that comes due, in time order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		var (
			nextAt     time.Time
			dueTimer   *fakeTimer
			dueTicker  *fakeTicker
			haveDueYet bool
		)
		for _, t := range f.timers {
			if t.stopped || t.at.After(target) {
				continue
			}
			if !haveDueYet || t.at.Before(nextAt) {
				nextAt, dueTimer, dueTicker, haveDueYet = t.at, t, nil, true
			}
		}
		for _, t := range f.tickers {
			if t.stopped || t.next.After(target) {
				continue
			}
			if !haveDueYet || t.next.Before(nextAt) {
				nextAt, dueTimer, dueTicker, haveDueYet = t.next, nil, t, true
			}
		}
		if !haveDueYet {
			break
		}
		f.now = nextAt
		if dueTimer != nil {
			dueTimer.stopped = true
			fn := dueTimer.fn
			f.mu.Unlock()
			fn()
			f.mu.Lock()
		} else {
			dueTicker.next = dueTicker.next.Add(dueTicker.period)
			select {
			case dueTicker.c <- f.now:
			default: // receiver behind; drop the tick like time.Ticker
			}
		}
	}
	f.now = target
	f.mu.Unlock()
}

type fakeTimer struct {
	clk     *Fake
	at      time.Time
	fn      func()
	stopped bool
}

func (t *fakeTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	was := !t.stopped
	t.stopped = true
	return was
}

type fakeTicker struct {
	clk     *Fake
	period  time.Duration
	next    time.Time
	c       chan time.Time
	stopped bool
}

func (t *fakeTicker) Chan() <-chan time.Time { return t.c }

func (t *fakeTicker) Stop() {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	t.stopped = true
}
