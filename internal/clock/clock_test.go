package clock

import (
	"testing"
	"time"
)

func TestFakeNowAdvances(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(3 * time.Second)
	if want := start.Add(3 * time.Second); !f.Now().Equal(want) {
		t.Errorf("Now = %v, want %v", f.Now(), want)
	}
}

func TestFakeAfterFuncFiresInOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var fired []int
	f.AfterFunc(30*time.Millisecond, func() { fired = append(fired, 3) })
	f.AfterFunc(10*time.Millisecond, func() { fired = append(fired, 1) })
	f.AfterFunc(20*time.Millisecond, func() { fired = append(fired, 2) })
	f.Advance(25 * time.Millisecond)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Errorf("fired = %v, want [1 2]", fired)
	}
	f.Advance(10 * time.Millisecond)
	if len(fired) != 3 || fired[2] != 3 {
		t.Errorf("fired = %v, want [1 2 3]", fired)
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ran := false
	tm := f.AfterFunc(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Error("first Stop reported already-stopped")
	}
	if tm.Stop() {
		t.Error("second Stop reported active")
	}
	f.Advance(2 * time.Second)
	if ran {
		t.Error("stopped timer fired")
	}
}

func TestFakeTickerTicksAndDrops(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(10 * time.Millisecond)
	// Three periods elapse but the channel holds one tick (dropped-tick
	// semantics, like time.Ticker with a slow receiver).
	f.Advance(30 * time.Millisecond)
	select {
	case <-tk.Chan():
	default:
		t.Fatal("no tick after 3 periods")
	}
	select {
	case <-tk.Chan():
		t.Fatal("backlogged ticks were not dropped")
	default:
	}
	// A drained ticker ticks again on the next period.
	f.Advance(10 * time.Millisecond)
	select {
	case <-tk.Chan():
	default:
		t.Fatal("no tick after drain + 1 period")
	}
	tk.Stop()
	f.Advance(50 * time.Millisecond)
	select {
	case <-tk.Chan():
		t.Fatal("stopped ticker ticked")
	default:
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	if d := time.Since(c.Now()); d > time.Minute || d < -time.Minute {
		t.Errorf("Real.Now far from wall clock: %v", d)
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.AfterFunc never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.Chan():
	case <-time.After(2 * time.Second):
		t.Fatal("Real ticker never ticked")
	}
}
