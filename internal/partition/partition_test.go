package partition

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	f := func(key []byte, serial int64, n uint8) bool {
		splits := int(n%32) + 1
		a := Hash(key, serial, splits)
		b := Hash(key, 0, splits) // serial must not matter
		return a == b && a >= 0 && a < splits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashSingleSplit(t *testing.T) {
	if got := Hash([]byte("anything"), 5, 1); got != 0 {
		t.Errorf("Hash with n=1 = %d, want 0", got)
	}
}

func TestHashSpread(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for i := 0; i < 10000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		counts[Hash(key, 0, n)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1700 {
			t.Errorf("split %d has %d of 10000 keys; poor spread", i, c)
		}
	}
}

func TestConstant(t *testing.T) {
	f := func(key []byte, serial int64) bool {
		return Constant(key, serial, 16) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundRobin(t *testing.T) {
	for serial := int64(0); serial < 20; serial++ {
		got := RoundRobin(nil, serial, 4)
		if got != int(serial%4) {
			t.Errorf("RoundRobin(serial=%d) = %d", serial, got)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		fn, err := ByName(name)
		if err != nil || fn == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	// Default name.
	if fn, err := ByName(""); err != nil || fn == nil {
		t.Errorf("ByName(\"\"): %v", err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus): expected error")
	}
}

func TestRangePartition(t *testing.T) {
	r := NewRange([][]byte{[]byte("m"), []byte("f")}) // sorted to f, m
	cases := []struct {
		key  string
		want int
	}{
		{"a", 0},
		{"e", 0},
		{"f", 1},
		{"g", 1},
		{"m", 2},
		{"z", 2},
	}
	for _, c := range cases {
		if got := r.Partition([]byte(c.key), 0, 3); got != c.want {
			t.Errorf("Partition(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestRangePartitionOrderPreserving(t *testing.T) {
	r := NewRange([][]byte{[]byte("dd"), []byte("pp")})
	f := func(a, b []byte) bool {
		pa := r.Partition(a, 0, 3)
		pb := r.Partition(b, 0, 3)
		if string(a) < string(b) {
			return pa <= pb
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeFewerSplitsThanBoundaries(t *testing.T) {
	r := NewRange([][]byte{[]byte("b"), []byte("d"), []byte("f")})
	// With n=2 only the first boundary applies.
	if got := r.Partition([]byte("c"), 0, 2); got != 1 {
		t.Errorf("Partition(c, n=2) = %d, want 1", got)
	}
	if got := r.Partition([]byte("a"), 0, 2); got != 0 {
		t.Errorf("Partition(a, n=2) = %d, want 0", got)
	}
	if got := r.Partition([]byte("z"), 0, 2); got != 1 {
		t.Errorf("Partition(z, n=2) = %d, want 1", got)
	}
}

func TestRangeCopiesBoundaries(t *testing.T) {
	b := []byte("m")
	r := NewRange([][]byte{b})
	b[0] = 'a'
	if got := r.Partition([]byte("c"), 0, 2); got != 0 {
		t.Error("NewRange aliased caller's boundary slice")
	}
}

func TestRoundRobinPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RoundRobin(nil, 0, 0)
}

func BenchmarkHashPartition(b *testing.B) {
	key := []byte("the-quick-brown-fox")
	for i := 0; i < b.N; i++ {
		Hash(key, int64(i), 64)
	}
}
