// Package partition provides the partition functions that route an
// intermediate key to one of n reduce splits. A partitioner must be
// deterministic (same key, same n -> same split) so that serial,
// mock-parallel, and distributed executions of a program agree — the
// Mrs paper relies on that agreement as its primary debugging aid.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/hash"
)

// Func maps a key and serial number to a split in [0, n). The serial
// number is the index of the record within its input split; partitioners
// that ignore the key (e.g. round-robin) use it instead.
type Func func(key []byte, serial int64, n int) int

// Hash partitions by FNV-1a of the key; the default partitioner.
func Hash(key []byte, serial int64, n int) int {
	if n == 1 {
		return 0
	}
	// FNV-1a avalanches its low bits well but not its high bits; Bucket
	// consumes high bits, so run the hash through a finalizing mix.
	return hash.Bucket(hash.Mix64(hash.FNV1a64(key)), n)
}

// Constant routes everything to split 0; useful for single-reducer
// operations such as global convergence checks.
func Constant(key []byte, serial int64, n int) int {
	return 0
}

// RoundRobin ignores keys and deals records out cyclically. It is only
// valid for map inputs (where grouping is not yet required), never for
// reduce inputs.
func RoundRobin(key []byte, serial int64, n int) int {
	if n <= 0 {
		panic("partition: RoundRobin requires n > 0")
	}
	return int(serial % int64(n))
}

// ByName returns a named built-in partitioner; used when a partitioner
// choice travels across the wire in dataset metadata.
func ByName(name string) (Func, error) {
	switch name {
	case "", "hash":
		return Hash, nil
	case "constant":
		return Constant, nil
	case "roundrobin":
		return RoundRobin, nil
	}
	return nil, fmt.Errorf("partition: unknown partitioner %q", name)
}

// Names lists the built-in partitioner names.
func Names() []string { return []string{"constant", "hash", "roundrobin"} }

// KeyPure reports whether the named built-in partitioner routes a
// record by its key alone (ignoring the serial number). Key-pure
// partitioners are a prerequisite for split-aligned ("narrow")
// reduces: if producer and consumer share a key-pure partitioner and a
// split count, every key in input split s provably lands back in
// output split s. RoundRobin is serial-based and therefore not
// key-pure.
func KeyPure(name string) bool {
	switch name {
	case "", "hash", "constant":
		return true
	}
	return false
}

// Range partitions keys by comparing against a sorted set of split
// boundaries, giving totally ordered output across splits (the classic
// sorted-output partitioner). Keys below Boundaries[0] go to split 0,
// keys in [Boundaries[i-1], Boundaries[i]) to split i, and keys at or
// above the last boundary to the final split. len(Boundaries) must be
// n-1 for an n-way partition; extra boundaries are ignored.
type Range struct {
	Boundaries [][]byte
}

// NewRange builds a Range partitioner from (not necessarily sorted)
// boundary keys.
func NewRange(boundaries [][]byte) *Range {
	bs := make([][]byte, len(boundaries))
	for i, b := range boundaries {
		bs[i] = append([]byte(nil), b...)
	}
	sort.Slice(bs, func(i, j int) bool { return lessBytes(bs[i], bs[j]) })
	return &Range{Boundaries: bs}
}

// Partition implements Func.
func (r *Range) Partition(key []byte, serial int64, n int) int {
	if n <= 0 {
		panic("partition: Range requires n > 0")
	}
	limit := n - 1
	if limit > len(r.Boundaries) {
		limit = len(r.Boundaries)
	}
	// The split index is the number of boundaries <= key, i.e. the first
	// boundary index whose value exceeds key.
	return sort.Search(limit, func(i int) bool {
		return lessBytes(key, r.Boundaries[i])
	})
}

func lessBytes(a, b []byte) bool { return string(a) < string(b) }
