// Package corpus generates a deterministic synthetic text corpus with
// the structural properties of the Project Gutenberg dataset used in
// §V-B of the Mrs paper: tens of thousands of plain-ASCII files spread
// over a nested directory tree (the layout the paper calls
// "representative of real world data" and that Hadoop's input loader
// struggled with), with Zipf-distributed word frequencies.
//
// Substitution note (DESIGN.md): the real 31,173-file dataset is not
// redistributable here; what the experiments depend on is (a) the file
// count and directory nesting, which drive input-scan costs, and (b)
// the token volume and skew, which drive map/combine/reduce work. Both
// are preserved under a documented scale factor.
package corpus

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/prand"
)

// Spec describes a corpus to generate.
type Spec struct {
	// Files is the number of documents (the paper's full set: 31,173;
	// subset: 8,316).
	Files int
	// MeanWords is the average words per document.
	MeanWords int
	// Vocabulary is the number of distinct words (default 30,000).
	Vocabulary int
	// ZipfS is the Zipf exponent (default 1.07, a typical fit for
	// English text).
	ZipfS float64
	// Seed makes generation deterministic.
	Seed uint64
	// FlatLayout disables directory nesting (for the Hadoop
	// single-directory comparison).
	FlatLayout bool
}

func (s *Spec) fill() {
	if s.Files <= 0 {
		s.Files = 100
	}
	if s.MeanWords <= 0 {
		s.MeanWords = 2000
	}
	if s.Vocabulary <= 0 {
		s.Vocabulary = 30000
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.07
	}
}

// Stats summarizes a generated corpus.
type Stats struct {
	Files       int
	Tokens      int64
	Bytes       int64
	Directories int
}

// Vocab is a deterministic synthetic vocabulary with Zipf sampling.
type Vocab struct {
	words []string
	cdf   []float64
}

// NewVocab builds a vocabulary of n synthetic words with Zipf(s)
// frequencies, deterministically from seed.
func NewVocab(n int, s float64, seed uint64) *Vocab {
	rng := prand.Random(seed, 0xB0CA)
	words := make([]string, n)
	seen := map[string]bool{}
	for i := range words {
		// The pool of short words is finite, so collisions grow the
		// word with each failed attempt rather than retrying forever.
		for attempt := 0; ; attempt++ {
			w := synthWord(rng, i, attempt)
			if !seen[w] {
				seen[w] = true
				words[i] = w
				break
			}
		}
	}
	// CDF over ranks: p(r) ∝ 1/(r+1)^s.
	cdf := make([]float64, n)
	var total float64
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), s)
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	return &Vocab{words: words, cdf: cdf}
}

// Sample draws one word.
func (v *Vocab) Sample(rng *prand.MT) string {
	u := rng.Float64()
	lo, hi := 0, len(v.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return v.words[lo]
}

// Size returns the vocabulary size.
func (v *Vocab) Size() int { return len(v.words) }

// Word returns the rank-r word.
func (v *Vocab) Word(r int) string { return v.words[r] }

// synthWord makes a pronounceable-ish lowercase word; earlier ranks get
// shorter words, echoing natural language. Each retry attempt adds a
// syllable so the name space never exhausts.
func synthWord(rng *prand.MT, rank, attempt int) string {
	consonants := "bcdfghjklmnpqrstvwz"
	vowels := "aeiou"
	syllables := 1 + rank%4 + attempt/2
	var sb strings.Builder
	for i := 0; i < syllables; i++ {
		sb.WriteByte(consonants[rng.Intn(len(consonants))])
		sb.WriteByte(vowels[rng.Intn(len(vowels))])
		if rng.Intn(3) == 0 {
			sb.WriteByte(consonants[rng.Intn(len(consonants))])
		}
	}
	return sb.String()
}

// Path returns the repository-relative path of document i under the
// Gutenberg-style nested layout: digits of the id become directories
// (e.g. id 12345 -> "1/2/3/4/12345/12345.txt"), exactly the shape that
// defeats single-directory input loaders.
func (s *Spec) Path(i int) string {
	id := i + 10000 // keep ids a uniform width for realistic nesting
	if s.FlatLayout {
		return fmt.Sprintf("%d.txt", id)
	}
	digits := fmt.Sprintf("%d", id)
	parts := make([]string, 0, len(digits)+1)
	for _, d := range digits[:len(digits)-1] {
		parts = append(parts, string(d))
	}
	parts = append(parts, digits, digits+".txt")
	return filepath.Join(parts...)
}

// Generate writes the corpus under dir and returns the file paths (in
// generation order) and stats.
func Generate(dir string, spec Spec) ([]string, Stats, error) {
	spec.fill()
	vocab := NewVocab(spec.Vocabulary, spec.ZipfS, spec.Seed)
	paths := make([]string, 0, spec.Files)
	stats := Stats{Files: spec.Files}
	dirs := map[string]bool{}
	for i := 0; i < spec.Files; i++ {
		rel := spec.Path(i)
		full := filepath.Join(dir, rel)
		parent := filepath.Dir(full)
		if !dirs[parent] {
			if err := os.MkdirAll(parent, 0o755); err != nil {
				return nil, stats, err
			}
			dirs[parent] = true
		}
		tokens, bytes, err := writeDoc(full, vocab, spec, i)
		if err != nil {
			return nil, stats, err
		}
		stats.Tokens += tokens
		stats.Bytes += bytes
		paths = append(paths, full)
	}
	stats.Directories = len(dirs)
	return paths, stats, nil
}

// writeDoc writes one document; length varies ±50% around MeanWords.
func writeDoc(path string, vocab *Vocab, spec Spec, i int) (tokens, bytes int64, err error) {
	rng := prand.Random(spec.Seed, 0xD0C, uint64(i))
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	w := bufio.NewWriter(f)
	n := spec.MeanWords/2 + rng.Intn(spec.MeanWords+1)
	lineLen := 0
	for t := 0; t < n; t++ {
		word := vocab.Sample(rng)
		if lineLen+len(word)+1 > 70 {
			if err := w.WriteByte('\n'); err != nil {
				f.Close()
				return tokens, bytes, err
			}
			bytes++
			lineLen = 0
		} else if lineLen > 0 {
			if err := w.WriteByte(' '); err != nil {
				f.Close()
				return tokens, bytes, err
			}
			bytes++
			lineLen++
		}
		if _, err := w.WriteString(word); err != nil {
			f.Close()
			return tokens, bytes, err
		}
		bytes += int64(len(word))
		lineLen += len(word)
		tokens++
	}
	if err := w.WriteByte('\n'); err != nil {
		f.Close()
		return tokens, bytes, err
	}
	bytes++
	if err := w.Flush(); err != nil {
		f.Close()
		return tokens, bytes, err
	}
	return tokens, bytes, f.Close()
}

// PaperFullSpec returns the full-dataset structure at a given scale in
// (0, 1]: scale 1 is the paper's 31,173 files with ~2e9 tokens.
func PaperFullSpec(scale float64, seed uint64) Spec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return Spec{
		Files: int(31173 * scale),
		// 2e9 tokens / 31173 files ≈ 64k words per file.
		MeanWords: 64000,
		Seed:      seed,
	}
}

// PaperSubsetSpec returns the 8,316-file subset structure at scale.
func PaperSubsetSpec(scale float64, seed uint64) Spec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return Spec{
		Files:     int(8316 * scale),
		MeanWords: 64000,
		Seed:      seed,
	}
}
