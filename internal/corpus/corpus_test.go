package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/prand"
)

func TestVocabDeterministic(t *testing.T) {
	a := NewVocab(100, 1.07, 42)
	b := NewVocab(100, 1.07, 42)
	for i := 0; i < 100; i++ {
		if a.Word(i) != b.Word(i) {
			t.Fatalf("word %d differs: %q vs %q", i, a.Word(i), b.Word(i))
		}
	}
}

func TestVocabDistinctWords(t *testing.T) {
	v := NewVocab(500, 1.07, 7)
	seen := map[string]bool{}
	for i := 0; i < v.Size(); i++ {
		w := v.Word(i)
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		if w == "" {
			t.Fatal("empty word")
		}
		seen[w] = true
	}
}

func TestZipfSkew(t *testing.T) {
	v := NewVocab(1000, 1.07, 9)
	rng := prand.Random(9, 1)
	counts := map[string]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[v.Sample(rng)]++
	}
	top := counts[v.Word(0)]
	mid := counts[v.Word(99)]
	if top == 0 || mid == 0 {
		t.Fatalf("rank-0 count %d, rank-99 count %d", top, mid)
	}
	// Zipf 1.07: rank 0 should appear roughly 100^1.07 ≈ 138x more
	// often than rank 99; accept a broad band.
	ratio := float64(top) / float64(mid)
	if ratio < 20 {
		t.Errorf("insufficient skew: top/mid = %v", ratio)
	}
}

func TestGenerateSmallCorpus(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Files: 20, MeanWords: 100, Vocabulary: 200, Seed: 11}
	paths, stats, err := Generate(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 20 || stats.Files != 20 {
		t.Fatalf("got %d paths, stats %+v", len(paths), stats)
	}
	if stats.Tokens < 20*50 || stats.Tokens > 20*200 {
		t.Errorf("token volume %d implausible for mean 100", stats.Tokens)
	}
	if stats.Directories < 2 {
		t.Errorf("nested layout produced only %d directories", stats.Directories)
	}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("empty file %s", p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	read := func() string {
		dir := t.TempDir()
		paths, _, err := Generate(dir, Spec{Files: 3, MeanWords: 50, Vocabulary: 100, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(paths[1])
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if read() != read() {
		t.Error("generation not deterministic")
	}
}

func TestNestedLayout(t *testing.T) {
	spec := Spec{}
	spec.fill()
	p := spec.Path(2345) // id 12345
	want := filepath.Join("1", "2", "3", "4", "12345", "12345.txt")
	if p != want {
		t.Errorf("Path = %q, want %q", p, want)
	}
	spec.FlatLayout = true
	if got := spec.Path(2345); got != "12345.txt" {
		t.Errorf("flat Path = %q", got)
	}
}

func TestPathsUnique(t *testing.T) {
	spec := Spec{Files: 500}
	spec.fill()
	seen := map[string]bool{}
	for i := 0; i < spec.Files; i++ {
		p := spec.Path(i)
		if seen[p] {
			t.Fatalf("duplicate path %q", p)
		}
		seen[p] = true
	}
}

func TestLineLengthBounded(t *testing.T) {
	dir := t.TempDir()
	paths, _, err := Generate(dir, Spec{Files: 1, MeanWords: 500, Vocabulary: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if len(line) > 90 {
			t.Errorf("line too long (%d chars)", len(line))
		}
	}
}

func TestPaperSpecs(t *testing.T) {
	full := PaperFullSpec(1, 1)
	if full.Files != 31173 {
		t.Errorf("full files = %d", full.Files)
	}
	sub := PaperSubsetSpec(1, 1)
	if sub.Files != 8316 {
		t.Errorf("subset files = %d", sub.Files)
	}
	tiny := PaperFullSpec(0.001, 1)
	if tiny.Files != 31 {
		t.Errorf("scaled files = %d", tiny.Files)
	}
	if bad := PaperFullSpec(-1, 1); bad.Files != 31173 {
		t.Errorf("invalid scale should clamp to 1: %d", bad.Files)
	}
}

func BenchmarkGenerateDoc(b *testing.B) {
	dir := b.TempDir()
	vocab := NewVocab(5000, 1.07, 1)
	spec := Spec{MeanWords: 2000, Seed: 1}
	spec.fill()
	path := filepath.Join(dir, "bench.txt")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := writeDoc(path, vocab, spec, i); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLargeVocabTerminates(t *testing.T) {
	// Regression: short-word name space exhaustion must not hang.
	v := NewVocab(30000, 1.07, 3)
	if v.Size() != 30000 {
		t.Errorf("Size = %d", v.Size())
	}
}
