// Benchmarks regenerating the paper's tables and figures (one bench
// per experiment; EXPERIMENTS.md maps each to its paper artifact), plus
// ablations of the design choices called out in DESIGN.md §11.
//
// Run everything:   go test -bench=. -benchmem .
// One experiment:   go test -bench=BenchmarkPiFig3a .
package mrs_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hadoopsim"
	"repro/internal/interp"
	"repro/internal/kvio"
	"repro/internal/partition"
	"repro/internal/pbs"
	"repro/internal/piest"
	"repro/internal/pso"
	"repro/internal/wordcount"
)

// ---------------------------------------------------------------------------
// EXP-PROG / EXP-SCRIPT (Programs 1-4)

func BenchmarkProgramComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pbs.NewProgramComparison()
		if p.MrsLines() >= p.HadoopLines() {
			b.Fatal("comparison inverted")
		}
	}
}

func BenchmarkStartupScripts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := pbs.Compare(21, 1<<30, 31173)
		if c.Hadoop.StartupTime() <= c.Mrs.StartupTime() {
			b.Fatal("hadoop startup should dominate")
		}
	}
}

// ---------------------------------------------------------------------------
// EXP-WC (the WordCount narrative table)

// wcCorpus generates a small corpus once per benchmark binary.
func wcCorpus(b *testing.B, files int) []string {
	b.Helper()
	dir, err := os.MkdirTemp("", "mrs-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	paths, _, err := corpus.Generate(dir, corpus.Spec{Files: files, MeanWords: 400, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return paths
}

func BenchmarkWordCountMrs(b *testing.B) {
	paths := wcCorpus(b, 60)
	reg := core.NewRegistry()
	wordcount.Register(reg)
	exec := core.NewThreads(reg, 4)
	defer exec.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := core.NewJob(exec)
		out, err := wordcount.Run(job, paths, wordcount.Options{MapSplits: 8, ReduceSplits: 4})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := out.Collect(); err != nil {
			b.Fatal(err)
		}
		job.Close()
	}
}

func BenchmarkWordCountHadoopSim(b *testing.B) {
	c, err := hadoopsim.NewCluster(21, hadoopsim.DefaultProfile())
	if err != nil {
		b.Fatal(err)
	}
	job := hadoopsim.Job{
		Maps: 31173, Reduces: 126,
		MapTime: 500 * time.Millisecond, ReduceTime: 5 * time.Second,
		InputFiles: 31173,
	}
	for i := 0; i < b.N; i++ {
		res, err := c.Run(job)
		if err != nil {
			b.Fatal(err)
		}
		if res.InputScan < 8*time.Minute {
			b.Fatalf("scan %v lost its paper calibration", res.InputScan)
		}
	}
}

// ---------------------------------------------------------------------------
// EXP-PI-A / EXP-PI-B (Figure 3)

func benchPiSeries(b *testing.B, tiers []interp.Tier) {
	perSample := interp.CalibrateSampleCost(1 << 18)
	hadoop, err := hadoopsim.NewCluster(21, hadoopsim.DefaultProfile())
	if err != nil {
		b.Fatal(err)
	}
	overhead, err := hadoop.OverheadEmpty()
	if err != nil {
		b.Fatal(err)
	}
	hadoopModel := interp.Model{Overhead: overhead, SampleCost: interp.Java.Scale(perSample), Parallelism: 4}
	for _, tier := range tiers {
		tier := tier
		b.Run("model/"+tier.Name, func(b *testing.B) {
			m := interp.Model{Overhead: 25 * time.Millisecond, Startup: 20 * time.Millisecond,
				SampleCost: tier.Scale(perSample), Parallelism: 4}
			for i := 0; i < b.N; i++ {
				for e := 0; e <= 9; e++ {
					n := uint64(1)
					for k := 0; k < e; k++ {
						n *= 10
					}
					_ = m.Predict(n)
					_ = hadoopModel.Predict(n)
				}
			}
		})
	}
	b.Run("live/c/1e6", func(b *testing.B) {
		cfg := piest.Config{Samples: 1_000_000, Tasks: 8}
		reg := core.NewRegistry()
		piest.Register(reg, cfg)
		exec := core.NewThreads(reg, 4)
		defer exec.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job := core.NewJob(exec)
			if _, err := piest.Run(job, cfg); err != nil {
				b.Fatal(err)
			}
			job.Close()
		}
	})
}

func BenchmarkPiFig3a(b *testing.B) {
	benchPiSeries(b, []interp.Tier{interp.CPython, interp.PyPy})
}

func BenchmarkPiFig3b(b *testing.B) {
	benchPiSeries(b, []interp.Tier{interp.C, interp.PyPy})
}

// ---------------------------------------------------------------------------
// EXP-CROSS

func BenchmarkCrossover(b *testing.B) {
	perSample := 30 * time.Nanosecond
	hadoop := interp.Model{Overhead: 30 * time.Second, SampleCost: interp.Java.Scale(perSample)}
	mrs := interp.Model{Overhead: 300 * time.Millisecond, SampleCost: interp.CPython.Scale(perSample)}
	for i := 0; i < b.N; i++ {
		if interp.CrossoverSamples(mrs, hadoop) == 0 {
			b.Fatal("expected a crossover")
		}
	}
}

// ---------------------------------------------------------------------------
// EXP-PSO (Figure 4) and EXP-ITER

func psoBenchConfig() pso.Config {
	return pso.Config{
		Function:   "rosenbrock",
		Dims:       50,
		NumSwarms:  8,
		SwarmSize:  5,
		InnerIters: 20,
		Seed:       42,
		MaxOuter:   10,
		Tasks:      4,
		CheckEvery: 2,
	}
}

func BenchmarkPSOSerial(b *testing.B) {
	cfg := psoBenchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := pso.RunSerial(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPSOMapReduceThreads(b *testing.B) {
	cfg := psoBenchConfig()
	reg := core.NewRegistry()
	if err := pso.Register(reg, cfg); err != nil {
		b.Fatal(err)
	}
	exec := core.NewThreads(reg, 4)
	defer exec.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := core.NewJob(exec)
		if _, err := pso.RunMapReduce(job, cfg); err != nil {
			b.Fatal(err)
		}
		job.Close()
	}
}

func BenchmarkPSOMapReduceDistributed(b *testing.B) {
	cfg := psoBenchConfig()
	reg := core.NewRegistry()
	if err := pso.Register(reg, cfg); err != nil {
		b.Fatal(err)
	}
	c, err := cluster.Start(reg, cluster.Options{Slaves: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := core.NewJob(c.Executor())
		if _, err := pso.RunMapReduce(job, cfg); err != nil {
			b.Fatal(err)
		}
		job.Close()
	}
}

// splitKeys returns one key per hash split of n, so an n-split dataset
// of these keys has exactly one key (and one record) per split.
func splitKeys(n int) []kvio.Pair {
	pairs := make([]kvio.Pair, 0, n)
	seen := make(map[int]bool)
	for i := 0; len(pairs) < n && i < 100*n; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		s := partition.Hash(k, 0, n)
		if !seen[s] {
			seen[s] = true
			pairs = append(pairs, kvio.Pair{Key: k, Value: []byte("x")})
		}
	}
	return pairs
}

// benchIterChain runs a b.N-long chain of narrow (key-aligned) reduces
// over a 4-split dataset on a 4-slave cluster. waitEach mimics a driver
// that blocks on every iteration; queued drivers enqueue the whole
// chain and wait once at the end, which is where split-level
// pipelining pays: each split's chain advances independently instead
// of re-synchronizing at every operation.
func benchIterChain(b *testing.B, pipelined, waitEach bool) {
	b.Helper()
	reg := core.NewRegistry()
	reg.RegisterReduce("keep", func(k []byte, vs [][]byte, e kvio.Emitter) error { return e.Emit(k, vs[0]) })
	c, err := cluster.Start(reg, cluster.Options{Slaves: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: pipelined})
	defer job.Close()
	ds, err := job.LocalData(splitKeys(4), core.OpOpts{Splits: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.Wait(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err = job.Reduce(ds, "keep", core.OpOpts{Splits: 4, KeyAligned: true})
		if err != nil {
			b.Fatal(err)
		}
		if waitEach {
			if err := ds.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := ds.Wait(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIterationOverhead measures the per-operation overhead of the
// distributed runtime (the paper's ~0.3 s figure; see EXPERIMENTS.md
// for ours). "waited" is the paper's measurement: one empty map per
// iteration, driver blocking each time. "queued" is the same length of
// chain driven the asynchronous way — queue ahead, wait once — which
// the pipelined scheduler overlaps across splits.
func BenchmarkIterationOverhead(b *testing.B) {
	b.Run("waited", func(b *testing.B) {
		reg := core.NewRegistry()
		reg.RegisterMap("identity", func(k, v []byte, e kvio.Emitter) error { return e.Emit(k, v) })
		c, err := cluster.Start(reg, cluster.Options{Slaves: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		job := core.NewJob(c.Executor())
		defer job.Close()
		ds, err := job.LocalData([]kvio.Pair{{Key: codec.EncodeVarint(1), Value: []byte("x")}},
			core.OpOpts{Splits: 4, Partition: "roundrobin"})
		if err != nil {
			b.Fatal(err)
		}
		if err := ds.Wait(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds, err = job.Map(ds, "identity", core.OpOpts{Splits: 4})
			if err != nil {
				b.Fatal(err)
			}
			if err := ds.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("queued", func(b *testing.B) { benchIterChain(b, true, false) })
}

// benchStaggerChain is benchIterChain with a rotating straggler: in
// iteration i, the task of split (i mod 4) sleeps 20 ms. Barriered,
// every iteration pays the straggler; pipelined, each split's chain
// advances independently so a given split pays only every 4th
// iteration — the paper's "iteration i+1 overlaps iteration i's
// stragglers" claim in benchmark form.
func benchStaggerChain(b *testing.B, pipelined bool) {
	b.Helper()
	reg := core.NewRegistry()
	reg.RegisterReduce("stagger", func(k []byte, vs [][]byte, e kvio.Emitter) error {
		n, err := strconv.Atoi(string(vs[0]))
		if err != nil {
			return err
		}
		if n%4 == partition.Hash(k, 0, 4) {
			time.Sleep(20 * time.Millisecond)
		}
		return e.Emit(k, []byte(strconv.Itoa(n+1)))
	})
	c, err := cluster.Start(reg, cluster.Options{Slaves: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	job := core.NewJobWith(c.Executor(), core.JobOptions{Pipeline: pipelined})
	defer job.Close()
	pairs := splitKeys(4)
	for i := range pairs {
		pairs[i].Value = []byte("0")
	}
	ds, err := job.LocalData(pairs, core.OpOpts{Splits: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.Wait(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err = job.Reduce(ds, "stagger", core.OpOpts{Splits: 4, KeyAligned: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := ds.Wait(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineAblation compares the pipelined DAG scheduler to the
// barriered ablation (JobOptions.Pipeline=false) on an identical queued
// chain of narrow reduces with a rotating straggler (DESIGN.md §7).
func BenchmarkPipelineAblation(b *testing.B) {
	b.Run("pipelined", func(b *testing.B) { benchStaggerChain(b, true) })
	b.Run("barriered", func(b *testing.B) { benchStaggerChain(b, false) })
}

// BenchmarkHadoopIterationOverhead is the simulated Hadoop equivalent.
func BenchmarkHadoopIterationOverhead(b *testing.B) {
	c, err := hadoopsim.NewCluster(21, hadoopsim.DefaultProfile())
	if err != nil {
		b.Fatal(err)
	}
	var total time.Duration
	for i := 0; i < b.N; i++ {
		ovh, err := c.OverheadEmpty()
		if err != nil {
			b.Fatal(err)
		}
		total += ovh
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "sim-ms/op")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §7)

func benchWordCountLocal(b *testing.B, disableCombiner bool) {
	var lines []kvio.Pair
	for i := 0; i < 400; i++ {
		lines = append(lines, kvio.Pair{
			Key:   codec.EncodeVarint(int64(i)),
			Value: []byte("alpha beta gamma delta alpha beta alpha"),
		})
	}
	reg := core.NewRegistry()
	wordcount.Register(reg)
	exec := core.NewThreads(reg, 4)
	defer exec.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := core.NewJob(exec)
		src, err := job.LocalData(lines, core.OpOpts{Splits: 8, Partition: "roundrobin"})
		if err != nil {
			b.Fatal(err)
		}
		out, err := wordcount.RunOn(job, src, wordcount.Options{
			MapSplits: 8, ReduceSplits: 4, DisableCombiner: disableCombiner})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := out.Collect(); err != nil {
			b.Fatal(err)
		}
		job.Close()
	}
}

func BenchmarkCombinerAblation(b *testing.B) {
	b.Run("with-combiner", func(b *testing.B) { benchWordCountLocal(b, false) })
	b.Run("without-combiner", func(b *testing.B) { benchWordCountLocal(b, true) })
}

func benchIterativeCluster(b *testing.B, disableAffinity bool, sharedDir string) {
	reg := core.NewRegistry()
	reg.RegisterMap("identity", func(k, v []byte, e kvio.Emitter) error { return e.Emit(k, v) })
	c, err := cluster.Start(reg, cluster.Options{
		Slaves:          4,
		DisableAffinity: disableAffinity,
		SharedDir:       sharedDir,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	job := core.NewJob(c.Executor())
	defer job.Close()
	payload := make([]byte, 4096)
	ds, err := job.LocalData([]kvio.Pair{
		{Key: codec.EncodeVarint(1), Value: payload},
		{Key: codec.EncodeVarint(2), Value: payload},
		{Key: codec.EncodeVarint(3), Value: payload},
		{Key: codec.EncodeVarint(4), Value: payload},
	}, core.OpOpts{Splits: 4, Partition: "roundrobin"})
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.Wait(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err = job.Map(ds, "identity", core.OpOpts{Splits: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := ds.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAffinityAblation(b *testing.B) {
	b.Run("affinity", func(b *testing.B) { benchIterativeCluster(b, false, "") })
	b.Run("no-affinity", func(b *testing.B) { benchIterativeCluster(b, true, "") })
}

func BenchmarkDataPathAblation(b *testing.B) {
	b.Run("direct-http", func(b *testing.B) { benchIterativeCluster(b, false, "") })
	b.Run("shared-fs", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "mrs-shared-*")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		benchIterativeCluster(b, false, dir)
	})
}

func BenchmarkImplementations(b *testing.B) {
	mk := map[string]func(reg *core.Registry) (core.Executor, error){
		"serial": func(reg *core.Registry) (core.Executor, error) { return core.NewSerial(reg), nil },
		"mock": func(reg *core.Registry) (core.Executor, error) {
			return core.NewMockParallel(reg, "")
		},
		"threads": func(reg *core.Registry) (core.Executor, error) { return core.NewThreads(reg, 4), nil },
	}
	var lines []kvio.Pair
	for i := 0; i < 200; i++ {
		lines = append(lines, kvio.Pair{
			Key:   codec.EncodeVarint(int64(i)),
			Value: []byte(fmt.Sprintf("w%d x y z w%d", i%17, i%5)),
		})
	}
	for name, factory := range mk {
		name, factory := name, factory
		b.Run(name, func(b *testing.B) {
			reg := core.NewRegistry()
			wordcount.Register(reg)
			exec, err := factory(reg)
			if err != nil {
				b.Fatal(err)
			}
			defer exec.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				job := core.NewJob(exec)
				src, err := job.LocalData(lines, core.OpOpts{Splits: 4, Partition: "roundrobin"})
				if err != nil {
					b.Fatal(err)
				}
				out, err := wordcount.RunOn(job, src, wordcount.Options{MapSplits: 4, ReduceSplits: 2})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := out.Collect(); err != nil {
					b.Fatal(err)
				}
				job.Close()
			}
		})
	}
}

// BenchmarkSplitModelAblation compares per-file splits against
// Hadoop-style byte-range splits on the same corpus: few large files
// starve per-file parallelism.
func BenchmarkSplitModelAblation(b *testing.B) {
	dir, err := os.MkdirTemp("", "mrs-split-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths, _, err := corpus.Generate(dir, corpus.Spec{Files: 2, MeanWords: 60000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, splitBytes int64) {
		reg := core.NewRegistry()
		wordcount.Register(reg)
		exec := core.NewThreads(reg, 4)
		defer exec.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job := core.NewJob(exec)
			out, err := wordcount.Run(job, paths, wordcount.Options{
				MapSplits: 8, ReduceSplits: 4, SplitBytes: splitBytes})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := out.Collect(); err != nil {
				b.Fatal(err)
			}
			job.Close()
		}
	}
	b.Run("per-file", func(b *testing.B) { run(b, 0) })
	b.Run("ranged-64k", func(b *testing.B) { run(b, 64<<10) })
}
